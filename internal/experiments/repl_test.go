package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestFig3MatchesPaper(t *testing.T) {
	res, err := RunFig3()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]string{
		"A":         {"(a1)", "(a2)", "(a3)"},
		"A->B":      {"(a1, b2)", "(a2, b2)"},
		"B->C":      {"(b1, c1)", "(b1, c2)", "(b2, c2)"},
		"(A->B)->C": {"(a1, b2, c2)", "(a2, b2, c2)"},
	}
	for name, wantRows := range want {
		got := map[string]bool{}
		for _, row := range res.Results[name] {
			got[row.String()] = true
		}
		if len(got) != len(wantRows) {
			t.Errorf("%s: got %v, want %v", name, res.Results[name], wantRows)
			continue
		}
		for _, w := range wantRows {
			if !got[w] {
				t.Errorf("%s: missing %s in %v", name, w, res.Results[name])
			}
		}
	}
	if out := res.Render(); !strings.Contains(out, "Fig 3") {
		t.Errorf("render = %q", out)
	}
}

func TestRogueGCDiagnosis(t *testing.T) {
	cfg := GCConfig{
		Hosts: 4, Duration: 15 * time.Second, GCHost: 1,
		GCInterval: 2 * time.Second, GCPause: 1500 * time.Millisecond,
	}
	res, err := RunGC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// GC pauses observed only on the rogue host.
	if len(res.GCSpans) != 1 {
		t.Fatalf("GC spans on %v, want only %s", res.GCSpans, res.GCHost)
	}
	span, ok := res.GCSpans[res.GCHost]
	if !ok || span[0] < 2 {
		t.Fatalf("GC pauses = %v", res.GCSpans)
	}
	if span[1] < 1.2 || span[1] > 1.8 {
		t.Errorf("mean GC pause = %vs, want ~1.5s", span[1])
	}
	// The rogue host's RS latency is the worst.
	worst, worstHost := 0.0, ""
	for host, v := range res.RSLatency {
		if v > worst {
			worst, worstHost = v, host
		}
	}
	if worstHost != res.GCHost {
		t.Errorf("worst RS latency on %s (%vs), want %s: %v", worstHost, worst, res.GCHost, res.RSLatency)
	}
	if out := res.Render(); !strings.Contains(out, "rogue GC host") {
		t.Errorf("render = %q", out)
	}
}

func TestNNLockContention(t *testing.T) {
	cfg := NNLockConfig{Hosts: 2, Clients: 12, Duration: 3 * time.Second, OpDelay: 200 * time.Microsecond}
	res, err := RunNNLock(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExclMean < 2*res.SharedMean {
		t.Errorf("exclusive locking (%vs) not clearly slower than shared (%vs)",
			res.ExclMean, res.SharedMean)
	}
	if out := res.Render(); !strings.Contains(out, "exclusive") {
		t.Errorf("render = %q", out)
	}
}
