package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/baggage"
	"repro/internal/bus"
	"repro/internal/plan"
	"repro/internal/simtime"
	"repro/internal/tracepoint"
)

// deployment is one frontend plus one agent sharing a bus — the minimal
// monitored system.
type deployment struct {
	env *simtime.Env
	b   *bus.Bus
	pt  *PivotTracing
	reg *tracepoint.Registry
	ag  *agent.Agent
}

func deploy(env *simtime.Env) *deployment {
	b := bus.New()
	reg := tracepoint.NewRegistry()
	pt := New(b, reg)
	ag := agent.New(env, tracepoint.ProcInfo{Host: "h1", ProcName: "svc", ProcID: 1}, reg, b, time.Second)
	return &deployment{env: env, b: b, pt: pt, reg: reg, ag: ag}
}

func (d *deployment) request() context.Context {
	ctx := tracepoint.WithProc(context.Background(),
		tracepoint.ProcInfo{Host: "h1", ProcName: "svc", ProcID: 1})
	return baggage.NewContext(ctx, baggage.New())
}

func TestInstallAutoNamesQueries(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		d := deploy(env)
		d.reg.Define("Tp", "v")
		h1, err := d.pt.Install(`From e In Tp GroupBy e.host Select e.host, COUNT`)
		if err != nil {
			t.Fatal(err)
		}
		h2, err := d.pt.Install(`From e In Tp GroupBy e.host Select e.host, COUNT`)
		if err != nil {
			t.Fatal(err)
		}
		if h1.Name == h2.Name || h1.Name == "" {
			t.Errorf("names: %q, %q", h1.Name, h2.Name)
		}
	})
}

func TestInstallRejectsBadQuery(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		d := deploy(env)
		if _, err := d.pt.Install(`From e In Missing Select COUNT`); err == nil {
			t.Error("unknown tracepoint should fail")
		}
		if _, err := d.pt.Install(`this is not a query`); err == nil {
			t.Error("syntax error should fail")
		}
	})
}

func TestInstallNamedDuplicateRejected(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		d := deploy(env)
		d.reg.Define("Tp", "v")
		if _, err := d.pt.InstallNamed("Q", `From e In Tp GroupBy e.host Select e.host, COUNT`, plan.Optimized); err != nil {
			t.Fatal(err)
		}
		if _, err := d.pt.InstallNamed("Q", `From e In Tp GroupBy e.host Select e.host, COUNT`, plan.Optimized); err == nil {
			t.Error("duplicate name should fail")
		}
	})
}

func TestGlobalMergeAcrossIntervals(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		d := deploy(env)
		tp := d.reg.Define("Tp", "v")
		h, err := d.pt.Install(`From e In Tp GroupBy e.host Select e.host, AVERAGE(e.v)`)
		if err != nil {
			t.Fatal(err)
		}
		// Two intervals, different values: AVERAGE must merge partial
		// states (not average the per-interval averages, which would give
		// the wrong answer for uneven interval counts).
		tp.Here(d.request(), 10)
		d.ag.Flush()
		tp.Here(d.request(), 20)
		tp.Here(d.request(), 30)
		d.ag.Flush()
		rows := h.Rows()
		if len(rows) != 1 || rows[0][1].Float() != 20 {
			t.Fatalf("rows = %v, want average 20", rows)
		}
	})
}

func TestOnReportStreams(t *testing.T) {
	env := simtime.NewEnv()
	var got []agent.Report
	env.Run(func() {
		d := deploy(env)
		tp := d.reg.Define("Tp", "v")
		h, err := d.pt.Install(`From e In Tp GroupBy e.host Select e.host, COUNT`)
		if err != nil {
			t.Fatal(err)
		}
		h.OnReport(func(r agent.Report) { got = append(got, r) })
		tp.Here(d.request(), 1)
		env.Sleep(1500 * time.Millisecond)
	})
	if len(got) != 1 || got[0].Host != "h1" {
		t.Fatalf("reports = %+v", got)
	}
}

func TestNamedQueryJoinableAcrossInstalls(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		d := deploy(env)
		d.reg.Define("Recv")
		d.reg.Define("Send")
		d.reg.Define("Done", "id")
		if _, err := d.pt.InstallNamed("LAT", `From s In Send
			Join r In MostRecent(Recv) On r -> s
			Select s.time - r.time`, plan.Optimized); err != nil {
			t.Fatal(err)
		}
		h, err := d.pt.Install(`From d In Done
			Join m In LAT On m -> end
			GroupBy d.id Select d.id, AVERAGE(m)`)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(h.Explain(), "UNPACK") {
			t.Errorf("Explain = %q", h.Explain())
		}
	})
}

func TestUninstalledNameNoLongerJoinable(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		d := deploy(env)
		d.reg.Define("Send")
		d.reg.Define("Done", "id")
		h, err := d.pt.InstallNamed("LAT", `From s In Send Select s.time`, plan.Optimized)
		if err != nil {
			t.Fatal(err)
		}
		h.Uninstall()
		if _, err := d.pt.Install(`From d In Done Join m In LAT On m -> end GroupBy d.id Select d.id, AVERAGE(m)`); err == nil {
			t.Error("joining an uninstalled query should fail")
		}
	})
}

func TestRawQueryRowsStream(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		d := deploy(env)
		tp := d.reg.Define("Tp", "v")
		h, err := d.pt.Install(`From e In Tp Select e.v`)
		if err != nil {
			t.Fatal(err)
		}
		tp.Here(d.request(), 7)
		tp.Here(d.request(), 8)
		d.ag.Flush()
		rows := h.Rows()
		if len(rows) != 2 {
			t.Fatalf("rows = %v", rows)
		}
	})
}

func TestCostReportCountsActivity(t *testing.T) {
	env := simtime.NewEnv()
	var report string
	env.Run(func() {
		d := deploy(env)
		src := d.reg.Define("Src", "v")
		final := d.reg.Define("Final")
		h, err := d.pt.Install(`From f In Final
			Join s In Src On s -> f
			GroupBy s.v Select s.v, COUNT`)
		if err != nil {
			t.Fatal(err)
		}
		// Request 1: full chain. Request 2: join miss at Final.
		ctx := d.request()
		src.Here(ctx, 1)
		final.Here(ctx)
		final.Here(d.request())
		report = h.CostReport()
	})
	for _, want := range []string{"Src", "Final", "packed", "dropped"} {
		if !strings.Contains(report, want) {
			t.Errorf("cost report missing %q:\n%s", want, report)
		}
	}
	// Src packed 1 tuple; Final dropped 1 of 2 invocations.
	if !strings.Contains(report, "1") {
		t.Errorf("report: %s", report)
	}
}

func TestSamplingScalesDownProcessing(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		d := deploy(env)
		tp := d.reg.Define("Tp", "v")
		h, err := d.pt.InstallNamed("S", `From e In Tp GroupBy e.host Select e.host, COUNT`,
			plan.Options{Optimize: true, SampleEvery: 10})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			tp.Here(d.request(), i)
		}
		d.ag.Flush()
		rows := h.Rows()
		if len(rows) != 1 {
			t.Fatalf("rows = %v", rows)
		}
		// 1-in-10 sampling: COUNT is a scaled estimate of 100/10 = 10.
		if got := rows[0][1].Int(); got != 10 {
			t.Errorf("sampled count = %d, want 10", got)
		}
		prog := h.Plan.Emit
		if prog.Cost.Sampled.Load() != 90 {
			t.Errorf("sampled = %d, want 90", prog.Cost.Sampled.Load())
		}
	})
}
