package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/bus"
	"repro/internal/tracepoint"
)

func heartbeat(host, proc string, at, interval time.Duration) agent.Heartbeat {
	return agent.Heartbeat{
		Host: host, ProcName: proc, Time: at, Interval: interval,
	}
}

func TestStatusHeartbeatStaleness(t *testing.T) {
	b := bus.New()
	pt := New(b, tracepoint.NewRegistry())
	defer pt.Close()

	b.Publish(agent.HealthTopic, heartbeat("h1", "svc", 10*time.Second, time.Second))

	// Fresh: within 3 intervals of the heartbeat.
	s := pt.StatusAt(12 * time.Second)
	if len(s.Agents) != 1 {
		t.Fatalf("agents = %v", s.Agents)
	}
	if a := s.Agents[0]; !a.Healthy || a.Age != 2*time.Second {
		t.Errorf("fresh agent = %+v", a)
	}

	// Exactly at the staleness boundary is still healthy.
	if a := pt.StatusAt(13 * time.Second).Agents[0]; !a.Healthy {
		t.Errorf("boundary agent unhealthy: %+v", a)
	}

	// One tick past 3 intervals: unhealthy.
	if a := pt.StatusAt(13*time.Second + time.Nanosecond).Agents[0]; a.Healthy {
		t.Errorf("stale agent healthy: %+v", a)
	}

	// A heartbeat from the future (clock skew) is also flagged.
	if a := pt.StatusAt(9 * time.Second).Agents[0]; a.Healthy {
		t.Errorf("future heartbeat healthy: %+v", a)
	}

	// A new heartbeat recovers the agent.
	b.Publish(agent.HealthTopic, heartbeat("h1", "svc", 20*time.Second, time.Second))
	if a := pt.StatusAt(21 * time.Second).Agents[0]; !a.Healthy {
		t.Errorf("recovered agent unhealthy: %+v", a)
	}
}

func TestStatusSortsAgentsAndRendersHealth(t *testing.T) {
	b := bus.New()
	pt := New(b, tracepoint.NewRegistry())
	defer pt.Close()

	b.Publish(agent.HealthTopic, heartbeat("h2", "svc", time.Second, time.Second))
	b.Publish(agent.HealthTopic, heartbeat("h1", "worker", time.Second, time.Second))
	b.Publish(agent.HealthTopic, heartbeat("h1", "svc", 0, time.Second)) // stale below

	s := pt.StatusAt(10 * time.Second)
	if len(s.Agents) != 3 {
		t.Fatalf("agents = %v", s.Agents)
	}
	order := []string{"h1/svc", "h1/worker", "h2/svc"}
	for i, a := range s.Agents {
		if got := a.Host + "/" + a.ProcName; got != order[i] {
			t.Errorf("agent[%d] = %s, want %s", i, got, order[i])
		}
	}

	out := RenderStatus(s)
	if !strings.Contains(out, "UNHEALTHY") {
		t.Errorf("stale agent not flagged:\n%s", out)
	}
	if !strings.Contains(out, "agents (3):") {
		t.Errorf("agent count missing:\n%s", out)
	}
}

func TestStatusRequestRoundTrip(t *testing.T) {
	b := bus.New()
	pt := New(b, tracepoint.NewRegistry())
	defer pt.Close()

	var got agent.StatusResponse
	sub := b.Subscribe(agent.StatusResponseTopic, func(msg any) {
		if resp, ok := msg.(agent.StatusResponse); ok {
			got = resp
		}
	})
	defer b.Unsubscribe(sub)

	b.Publish(agent.StatusRequestTopic, agent.StatusRequest{ID: "req-7"})
	if got.ID != "req-7" {
		t.Fatalf("response ID = %q", got.ID)
	}
	if !strings.Contains(got.Text, "agents (0):") {
		t.Errorf("status text = %q", got.Text)
	}
}
