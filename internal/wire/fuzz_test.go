package wire

import (
	"bytes"
	"math"
	"testing"
	"time"

	"repro/internal/advice"
	"repro/internal/agent"
	"repro/internal/agg"
	"repro/internal/query"
	"repro/internal/randtest"
	"repro/internal/spans"
	"repro/internal/tuple"
)

// messageSeeds marshals one instance of every bus message type, plus
// malformed shapes the decoder must reject without panicking or
// preallocating for absurd claimed counts.
func messageSeeds(t testing.TB) map[string][]byte {
	mustMarshal := func(msg any) []byte {
		buf, err := Marshal(msg)
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	st := agg.New(agg.Sum)
	st.Add(tuple.Int(42))
	wst := agg.New(agg.Sum)
	wst.AddWeighted(tuple.Int(5), 10) // inexact state with weighted fields
	// sampledInstall builds an install whose single program carries rate:
	// the hostile-rate seeds below feed the decoder rates it must clamp
	// to "unsampled" rather than propagate into tuple weights.
	sampledInstall := func(rate float64) agent.Install {
		return agent.Install{
			QueryID: "QS",
			Programs: []*advice.Program{{
				QueryID: "QS", Tracepoint: "Tp",
				Observe: []int{0}, ObserveFields: tuple.Schema{"e.host"},
				SampleRate: rate,
				Emit: &advice.EmitOp{
					Cols:    []advice.EmitCol{{Pos: 0}, {IsAgg: true, Pos: -1, Fn: agg.Count}},
					GroupBy: []int{0}, Schema: tuple.Schema{"host", "COUNT"},
				},
			}},
		}
	}
	return map[string][]byte{
		"install": mustMarshal(agent.Install{
			QueryID: "Q1",
			Programs: []*advice.Program{{
				QueryID: "Q1", Tracepoint: "Tp",
				Observe: []int{0}, ObserveFields: tuple.Schema{"e.host"},
				Emit: &advice.EmitOp{
					Cols:    []advice.EmitCol{{Pos: 0}, {IsAgg: true, Pos: -1, Fn: agg.Count}},
					GroupBy: []int{0}, Schema: tuple.Schema{"host", "COUNT"},
				},
			}},
		}),
		"tenant-install": mustMarshal(agent.Install{
			QueryID: "alice.Q1", Tenant: "alice", Share: 64,
			Programs: []*advice.Program{{
				QueryID: "alice.Q1", Tracepoint: "Tp",
				Observe: []int{0}, ObserveFields: tuple.Schema{"e.host"},
				Emit: &advice.EmitOp{
					Cols:    []advice.EmitCol{{Pos: 0}, {IsAgg: true, Pos: -1, Fn: agg.Count}},
					GroupBy: []int{0}, Schema: tuple.Schema{"host", "COUNT"},
				},
			}},
		}),
		"sampled-install": mustMarshal(sampledInstall(0.1)),
		// Hostile sampling rates: the decoder clamps every one of these to
		// 0 (unsampled), so re-marshaling yields the canonical zero bits —
		// the fuzz fixpoint proves the clamp, not just the parse.
		"hostile-rate-zero-neg": mustMarshal(sampledInstall(math.Copysign(0, -1))),
		"hostile-rate-negative": mustMarshal(sampledInstall(-0.5)),
		"hostile-rate-gt1":      mustMarshal(sampledInstall(1.5)),
		"hostile-rate-nan":      mustMarshal(sampledInstall(math.NaN())),
		"hostile-rate-inf":      mustMarshal(sampledInstall(math.Inf(1))),
		// Subnormal rate whose inverse weight overflows to +Inf.
		"hostile-rate-huge-weight": mustMarshal(sampledInstall(5e-324)),
		"uninstall":                mustMarshal(agent.Uninstall{QueryID: "Q9"}),
		"renew": mustMarshal(agent.Renew{
			QueryIDs: []string{"Q1", "Q2"}, TTL: 30 * time.Second,
		}),
		"quarantine": mustMarshal(agent.Quarantine{
			QueryID: "Q1", Tracepoint: "Tp", Host: "h", ProcName: "p",
			Reason: "3 advice panics", Time: 7 * time.Second,
		}),
		"heartbeat": mustMarshal(agent.Heartbeat{
			Host: "h", ProcName: "p", Time: time.Second, Interval: time.Second, Queries: 1,
		}),
		// A combiner-tier heartbeat: the merge/forward counters ride the
		// same frame as agent heartbeats.
		"combiner-heartbeat": mustMarshal(agent.Heartbeat{
			Host: "combiners", ProcName: "combiner-mid-0",
			Time: 2 * time.Second, Interval: time.Second,
			Stats: agent.Stats{
				RowsReported: 12, Reports: 3, Batches: 2,
				CombinerReportsMerged: 9, CombinerFramesOut: 2,
			},
		}),
		"tenant-usage": mustMarshal(agent.TenantUsage{
			Host: "h", ProcName: "p", Time: 3 * time.Second,
			Usage: []agent.TenantQuota{
				{Tenant: "alice", Queries: 2, Tuples: 17},
				{Tenant: "bob", Queries: 1, Tuples: 3},
			},
		}),
		"status-request":  mustMarshal(agent.StatusRequest{ID: "s1"}),
		"status-response": mustMarshal(agent.StatusResponse{ID: "s1", Text: "ok"}),
		"report": mustMarshal(agent.Report{
			QueryID: "Q1", Host: "h", ProcName: "p", Time: 5 * time.Second,
			Groups: []*advice.Group{{
				Key: "k", Rep: tuple.Tuple{tuple.String("h"), tuple.Int(1)},
				States: []*agg.State{st},
			}},
			Raws: []tuple.Tuple{{tuple.Float(1.5)}},
		}),
		// A weighted (sampled) report: the inexact flag and the weighted
		// count/sum fields ride the state encoding.
		"weighted-report": mustMarshal(agent.Report{
			QueryID: "QS", Host: "h", ProcName: "p", Time: 5 * time.Second,
			Groups: []*advice.Group{{
				Key: "k", Rep: tuple.Tuple{tuple.String("h"), tuple.Int(1)},
				States: []*agg.State{wst},
			}},
		}),
		"report-batch": mustMarshal(agent.ReportBatch{
			Host: "h", ProcName: "p", Time: 5 * time.Second,
			Reports: []agent.Report{
				{QueryID: "Q1", Host: "h", ProcName: "p", Time: 5 * time.Second,
					Raws: []tuple.Tuple{{tuple.Int(7)}}},
				{QueryID: "Q2", Host: "h", ProcName: "p", Time: 5 * time.Second},
			},
		}),
		"span-batch": mustMarshal(agent.SpanBatch{
			Host: "h", ProcName: "p", Time: 5 * time.Second,
			Spans: []spans.Span{
				{TraceID: 0xdead, SpanID: 0xdead, Tracepoint: "root",
					Host: "h", ProcName: "p", Start: time.Millisecond},
				{TraceID: 0xdead, SpanID: 0xbeef, Parents: []uint64{0xdead, 1 << 63},
					Tracepoint: "child", Host: "h2", ProcName: "p2",
					Start: 2 * time.Millisecond, Duration: time.Millisecond},
			},
		}),
		"explain-stats": mustMarshal(agent.ExplainStats{
			QueryID: "Q1", Host: "h", ProcName: "p", Time: 5 * time.Second, FlushNS: 1234,
			Ops: []agent.OpStats{{
				Tracepoint: "Tp", Invocations: 10, Sampled: 1, DroppedByJoin: 2,
				TuplesFiltered: 3, TuplesPacked: 4, PackedBytes: 500, PackRefused: 1,
				EvictedGroups: 1, EvictedTuples: 2, EvictedBytes: 64,
				TuplesEmitted: 5, Panics: 0,
			}},
		}),
		"bad-tag": {0x7f},
		// Install claiming 2^28 programs in a one-byte body.
		"huge-count": {TagInstall, 0x01, 'q', 0xff, 0xff, 0xff, 0x7f, 0x00},
		// Batch claiming 2^28 reports in a one-byte body.
		"huge-batch": {TagReportBatch, 0x01, 'h', 0x01, 'p', 0x02, 0xff, 0xff, 0xff, 0x7f, 0x00},
		// SpanBatch claiming 2^28 spans in a one-byte body.
		"huge-span-batch": {TagSpanBatch, 0x01, 'h', 0x01, 'p', 0x02, 0xff, 0xff, 0xff, 0x7f, 0x00},
		// Span claiming 2^28 parents in a one-byte body.
		"huge-parents": {TagSpanBatch, 0x01, 'h', 0x01, 'p', 0x02, 0x01, 0x05, 0x06, 0xff, 0xff, 0xff, 0x7f, 0x00},
		// ExplainStats claiming 2^28 ops in a one-byte body.
		"huge-explain": {TagExplainStats, 0x01, 'q', 0x01, 'h', 0x01, 'p', 0x02, 0x04, 0xff, 0xff, 0xff, 0x7f, 0x00},
		// TenantUsage claiming 2^28 quota entries in a one-byte body.
		"huge-usage": {TagTenantUsage, 0x01, 'h', 0x01, 'p', 0x02, 0xff, 0xff, 0xff, 0x7f, 0x00},
	}
}

// exprSeeds encodes a deeply nested expression plus malformed shapes.
func exprSeeds(t testing.TB) map[string][]byte {
	q, err := query.Parse(`From e In Tp Where (e.a + 2) * e.b >= 10 && !(e.s = "x") || e.t - 1.5 < 0 Select COUNT`)
	if err != nil {
		t.Fatal(err)
	}
	return map[string][]byte{
		"nested":  AppendExpr(nil, q.Where[0]),
		"bad-tag": {0x7f},
		"empty":   {},
	}
}

// FuzzUnmarshal: decoding arbitrary bytes must never panic, and any
// successfully decoded message must re-marshal to a stable canonical
// encoding (Marshal ∘ Unmarshal is a fixpoint).
func FuzzUnmarshal(f *testing.F) {
	for _, s := range messageSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Unmarshal(data)
		if err != nil {
			return
		}
		enc, err := Marshal(msg)
		if err != nil {
			t.Fatalf("re-marshal of decoded %T: %v", msg, err)
		}
		msg2, err := Unmarshal(enc)
		if err != nil {
			t.Fatalf("re-unmarshal of re-marshaled %T: %v", msg, err)
		}
		enc2, err := Marshal(msg2)
		if err != nil {
			t.Fatalf("second re-marshal of %T: %v", msg2, err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("%T encoding is not a fixpoint:\n%x\n%x", msg, enc, enc2)
		}
	})
}

// FuzzDecodeExpr: same contract for the expression codec used inside
// advice programs.
func FuzzDecodeExpr(f *testing.F) {
	for _, s := range exprSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		e, rest, err := DecodeExpr(data)
		if err != nil {
			return
		}
		if len(rest) > len(data) {
			t.Fatalf("decode returned more bytes than it was given")
		}
		enc := AppendExpr(nil, e)
		e2, tail, err := DecodeExpr(enc)
		if err != nil || len(tail) != 0 {
			t.Fatalf("re-decode of re-encoded expr %s: err=%v trailing=%d", e, err, len(tail))
		}
		if enc2 := AppendExpr(nil, e2); !bytes.Equal(enc, enc2) {
			t.Fatalf("expr encoding is not a fixpoint:\n%x\n%x", enc, enc2)
		}
	})
}

func TestRegenWireFuzzCorpus(t *testing.T) {
	randtest.RegenCorpus(t, "FuzzUnmarshal", messageSeeds(t))
	randtest.RegenCorpus(t, "FuzzDecodeExpr", exprSeeds(t))
}
