package pivot

// Happened-before-join sampling atomicity: a request's sampling decision
// is minted once, in the originating process, before the request can
// split — so a join can never pair a sampled tuple with an unsampled
// ancestor. The observable contract, per request: either EVERY tracepoint
// crossing on the request's causal path is suppressed (and nothing is
// emitted), or NONE is (and the join emits). A "half request" — some
// crossings kept, some suppressed — would show up as a suppressed-crossing
// delta strictly between 0 and the script's event count.
//
// The table-driven half pins the topologies that could plausibly break
// the invariant (splits, joins, serialized process transfers, and their
// compositions); the quick-check half sweeps generated scripts.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/querygen"
	"repro/internal/randtest"
	"repro/internal/simtime"
	"repro/internal/tuple"
)

// atomicityQuery joins across every topology below at rate 0.3: low
// enough that ~50 requests see both verdicts, high enough to keep.
const atomicityQuery = "From b In Gen.Sink Join a In Gen.Src On a -> b GroupBy a.key Select a.key, COUNT, SUM(a.val) Sample 0.3"

// atomicityCase hand-builds one trace script over Gen.Src/Gen.Sink. All
// branches are folded into branch 0 and the sink fired once, mirroring
// GenerateSampled's shape, so every src event is in the sink's causal
// past.
func atomicityCase(name string, numProcs int, build func(c *querygen.Case, fire func(b, tp int, args ...tuple.Value))) (string, *querygen.Case) {
	c := &querygen.Case{
		TPs: []querygen.TP{
			{Name: "Gen.Src", Fields: []querygen.Field{{Name: "key", Kind: tuple.KindString}, {Name: "val", Kind: tuple.KindInt}}},
			{Name: "Gen.Sink", Fields: []querygen.Field{{Name: "n", Kind: tuple.KindInt}}},
		},
		NumProcs:  numProcs,
		QueryText: atomicityQuery,
	}
	for p := 0; p < numProcs; p++ {
		c.Hosts = append(c.Hosts, fmt.Sprintf("h%d", p))
		c.ProcNames = append(c.ProcNames, fmt.Sprintf("p%d", p))
	}
	procOf := make(map[int]int) // branch -> current proc (script-shadowing)
	procOf[0] = 0
	fire := func(b, tp int, args ...tuple.Value) {
		ev := querygen.Event{ID: len(c.Events), TP: tp, Proc: procOf[b], Args: args}
		c.Events = append(c.Events, ev)
		c.Ops = append(c.Ops, querygen.Op{Kind: querygen.OpFire, Branch: b, Event: ev.ID})
	}
	build(c, fire)
	return name, c
}

func src(key string, val int64) []tuple.Value {
	return []tuple.Value{tuple.String(key), tuple.Int(val)}
}

func TestHBJoinSamplingAtomicityTable(t *testing.T) {
	type tc struct {
		name string
		c    *querygen.Case
	}
	var cases []tc
	add := func(name string, c *querygen.Case) { cases = append(cases, tc{name, c}) }

	add(atomicityCase("linear-one-proc", 1, func(c *querygen.Case, fire func(b, tp int, args ...tuple.Value)) {
		fire(0, 0, src("a", 1)...)
		fire(0, 0, src("b", 2)...)
		fire(0, 0, src("a", 3)...)
		fire(0, 1, tuple.Int(1))
	}))
	add(atomicityCase("split-join-same-proc", 1, func(c *querygen.Case, fire func(b, tp int, args ...tuple.Value)) {
		c.Ops = append(c.Ops, querygen.Op{Kind: querygen.OpSplit, Branch: 0}) // branch 1
		fire(0, 0, src("a", 1)...)
		fire(1, 0, src("b", 2)...)
		c.Ops = append(c.Ops, querygen.Op{Kind: querygen.OpJoin, Branch: 0, Other: 1})
		fire(0, 1, tuple.Int(1))
	}))
	add(atomicityCase("transfer-round-trip", 2, func(c *querygen.Case, fire func(b, tp int, args ...tuple.Value)) {
		fire(0, 0, src("a", 1)...)
		c.Ops = append(c.Ops, querygen.Op{Kind: querygen.OpTransfer, Branch: 0, Proc: 1})
		ev := querygen.Event{ID: len(c.Events), TP: 0, Proc: 1, Args: src("b", 2)}
		c.Events = append(c.Events, ev)
		c.Ops = append(c.Ops, querygen.Op{Kind: querygen.OpFire, Branch: 0, Event: ev.ID})
		c.Ops = append(c.Ops, querygen.Op{Kind: querygen.OpTransfer, Branch: 0, Proc: 0})
		fire(0, 1, tuple.Int(1))
	}))
	add(atomicityCase("split-transfer-join", 2, func(c *querygen.Case, fire func(b, tp int, args ...tuple.Value)) {
		c.Ops = append(c.Ops, querygen.Op{Kind: querygen.OpSplit, Branch: 0}) // branch 1
		fire(0, 0, src("a", 1)...)
		c.Ops = append(c.Ops, querygen.Op{Kind: querygen.OpTransfer, Branch: 1, Proc: 1})
		ev := querygen.Event{ID: len(c.Events), TP: 0, Proc: 1, Args: src("b", 5)}
		c.Events = append(c.Events, ev)
		c.Ops = append(c.Ops, querygen.Op{Kind: querygen.OpFire, Branch: 1, Event: ev.ID})
		c.Ops = append(c.Ops, querygen.Op{Kind: querygen.OpTransfer, Branch: 1, Proc: 0})
		c.Ops = append(c.Ops, querygen.Op{Kind: querygen.OpJoin, Branch: 0, Other: 1})
		fire(0, 1, tuple.Int(1))
	}))
	add(atomicityCase("nested-splits", 1, func(c *querygen.Case, fire func(b, tp int, args ...tuple.Value)) {
		c.Ops = append(c.Ops, querygen.Op{Kind: querygen.OpSplit, Branch: 0}) // 1
		c.Ops = append(c.Ops, querygen.Op{Kind: querygen.OpSplit, Branch: 1}) // 2
		fire(0, 0, src("a", 1)...)
		fire(1, 0, src("b", 2)...)
		fire(2, 0, src("c", 3)...)
		c.Ops = append(c.Ops, querygen.Op{Kind: querygen.OpJoin, Branch: 1, Other: 2})
		c.Ops = append(c.Ops, querygen.Op{Kind: querygen.OpJoin, Branch: 0, Other: 1})
		fire(0, 1, tuple.Int(1))
	}))

	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if err := checkSamplingAtomicity(tt.c, 50); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestHBJoinSamplingAtomicityQuick quick-checks the invariant over
// generated sampled scripts.
func TestHBJoinSamplingAtomicityQuick(t *testing.T) {
	n := diffCases(t, 80, 25)
	randtest.Check(t, n, diffSampleSeed+700_000, func(seed int64) error {
		return checkSamplingAtomicity(querygen.GenerateSampled(seed), 30)
	})
}

// checkSamplingAtomicity replays c's script runs times and asserts the
// per-request all-or-nothing property from the agents' counters: after
// each run the suppressed-crossing delta is either 0 (request kept; the
// join emitted) or exactly len(c.Events) (request suppressed; nothing
// emitted).
func checkSamplingAtomicity(c *querygen.Case, runs int) error {
	var retErr error
	env := simtime.NewEnv()
	env.Run(func() {
		cfg := cluster.DefaultConfig()
		// One long interval: flush-driven reporting stays out of the way
		// of the per-run counter deltas (emission happens at fire time,
		// not flush time, but keeping flushes rare makes failures easier
		// to read).
		cfg.ReportInterval = time.Second
		cl := cluster.New(env, cfg)
		x := cluster.NewScriptExec(cl, c)
		if _, err := cl.PT.Install(c.QueryText); err != nil {
			retErr = fmt.Errorf("install: %w", err)
			return
		}
		stats := func() (suppressed, emitted int64) {
			for _, p := range cl.Procs() {
				if p.Agent != nil {
					st := p.Agent.Stats()
					suppressed += st.SampledOut
					emitted += st.TuplesEmitted
				}
			}
			return
		}
		nEvents := int64(len(c.Events))
		var kept, dropped int
		for i := 0; i < runs; i++ {
			s0, e0 := stats()
			if err := x.Run(); err != nil {
				retErr = fmt.Errorf("run %d: %w", i, err)
				return
			}
			s1, e1 := stats()
			switch s1 - s0 {
			case 0:
				kept++
				if e1 == e0 {
					retErr = fmt.Errorf("run %d: request kept (no crossings suppressed) but nothing was emitted\nquery: %s", i, c.QueryText)
					return
				}
			case nEvents:
				dropped++
				if e1 != e0 {
					retErr = fmt.Errorf("run %d: request suppressed yet %d tuples emitted — a join paired a sampled tuple with an unsampled ancestor\nquery: %s",
						i, e1-e0, c.QueryText)
					return
				}
			default:
				retErr = fmt.Errorf("run %d: %d of %d crossings suppressed — request partially sampled\nquery: %s",
					i, s1-s0, nEvents, c.QueryText)
				return
			}
		}
		// Non-vacuity: over runs at these rates both verdicts must occur
		// (the mint RNG is deterministic per seed, so this cannot flake).
		if kept == 0 || dropped == 0 {
			retErr = fmt.Errorf("sweep saw kept=%d dropped=%d over %d runs; atomicity property was vacuous\nquery: %s",
				kept, dropped, runs, c.QueryText)
		}
	})
	return retErr
}
