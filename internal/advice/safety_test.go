package advice

import (
	"context"
	"strings"
	"testing"

	"repro/internal/agg"
	"repro/internal/baggage"
	"repro/internal/tuple"
)

// safetyEmitter records emissions plus the optional governance callbacks.
type safetyEmitter struct {
	collectEmitter
	quarantined []string
	drops       []baggage.DropRecord
	packStats   baggage.PackStats
}

func (s *safetyEmitter) NoteQuarantine(p *Program, reason string) {
	s.quarantined = append(s.quarantined, reason)
}

func (s *safetyEmitter) NoteBaggageDrops(p *Program, recs []baggage.DropRecord) {
	s.drops = append(s.drops, recs...)
}

func (s *safetyEmitter) NotePackStats(p *Program, st baggage.PackStats) {
	s.packStats.Add(st)
}

func rawOp() *EmitOp {
	return &EmitOp{
		Cols:   []EmitCol{{Pos: 0}, {Pos: 1}},
		Raw:    true,
		Schema: tuple.Schema{"k", "v"},
	}
}

func aggOp() *EmitOp {
	return &EmitOp{
		Cols:    []EmitCol{{Pos: 0}, {IsAgg: true, Pos: 1, Fn: agg.Sum}},
		GroupBy: []int{0},
		Schema:  tuple.Schema{"k", "SUM(v)"},
	}
}

func kvRow(k string, v int64) tuple.Tuple {
	return tuple.Tuple{tuple.String(k), tuple.Int(v)}
}

// The satellite regression: before limits, a raw query that outlived its
// drain grew acc.raws without bound. The cap FIFO-evicts and counts.
func TestAccumulatorRawsCapFIFOEvicts(t *testing.T) {
	acc := NewAccumulator(rawOp())
	acc.SetLimits(Limits{MaxRaws: 3})
	for i := int64(0); i < 5; i++ {
		acc.Add(kvRow("k", i))
	}
	raws := acc.Raws()
	if len(raws) != 3 {
		t.Fatalf("raws = %d, want 3", len(raws))
	}
	// FIFO: the oldest rows (0, 1) are gone, newest (2, 3, 4) survive.
	for i, want := range []int64{2, 3, 4} {
		if raws[i][1].Int() != want {
			t.Fatalf("raws[%d] = %v, want v=%d", i, raws[i], want)
		}
	}
	if acc.RawsDropped() != 2 {
		t.Fatalf("RawsDropped = %d, want 2", acc.RawsDropped())
	}
	// Accounting is cumulative across Reset (the per-interval drain).
	acc.Reset()
	acc.Add(kvRow("k", 9))
	if acc.RawsDropped() != 2 || len(acc.Raws()) != 1 {
		t.Fatalf("after Reset: dropped=%d raws=%d", acc.RawsDropped(), len(acc.Raws()))
	}
}

func TestAccumulatorMergeRawCapped(t *testing.T) {
	acc := NewAccumulator(rawOp())
	acc.SetLimits(Limits{MaxRaws: 2})
	for i := int64(0); i < 4; i++ {
		acc.MergeRaw(kvRow("k", i))
	}
	if len(acc.Raws()) != 2 || acc.RawsDropped() != 2 {
		t.Fatalf("raws=%d dropped=%d, want 2/2", len(acc.Raws()), acc.RawsDropped())
	}
}

func TestAccumulatorGroupCapOverflows(t *testing.T) {
	acc := NewAccumulator(aggOp())
	acc.SetLimits(Limits{MaxGroups: 2})
	for i, k := range []string{"a", "b", "c", "d", "c"} {
		acc.Add(kvRow(k, int64(i)))
	}
	groups := acc.Groups()
	if len(groups) != 3 { // a, b, and the overflow catch-all
		t.Fatalf("groups = %d, want 3", len(groups))
	}
	if acc.GroupsOverflowed() != 3 { // c, d, c
		t.Fatalf("GroupsOverflowed = %d, want 3", acc.GroupsOverflowed())
	}
	var overflow *Group
	for _, g := range groups {
		if g.Key == OverflowKey {
			overflow = g
		}
	}
	if overflow == nil {
		t.Fatal("no overflow group")
	}
	// The overflow row is self-describing and its aggregate is exact:
	// SUM(v) over the overflowed rows = 2 + 3 + 4.
	if got := overflow.States[0].Result().Int(); got != 9 {
		t.Fatalf("overflow SUM = %d, want 9", got)
	}
	rows := acc.Rows()
	found := false
	for _, r := range rows {
		if r[0].Str() == "(overflow)" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no (overflow) row in %v", rows)
	}
}

func TestAccumulatorMergeGroupRoutesOverflow(t *testing.T) {
	remote := NewAccumulator(aggOp())
	remote.SetLimits(Limits{MaxGroups: 1})
	remote.Add(kvRow("a", 1))
	remote.Add(kvRow("b", 2)) // overflows remotely

	local := NewAccumulator(aggOp())
	local.SetLimits(Limits{MaxGroups: 1})
	local.Add(kvRow("z", 5))
	for _, g := range remote.Groups() {
		local.MergeGroup(g)
	}
	// "a" exceeds the local cap and lands in overflow; the remote
	// overflow group (holding b's 2) merges into the local overflow.
	var overflow *Group
	for _, g := range local.Groups() {
		if g.Key == OverflowKey {
			overflow = g
		}
	}
	if overflow == nil {
		t.Fatal("no local overflow group")
	}
	if got := overflow.States[0].Result().Int(); got != 3 {
		t.Fatalf("merged overflow SUM = %d, want 1+2=3", got)
	}
	if local.GroupsOverflowed() != 1 {
		t.Fatalf("local GroupsOverflowed = %d, want 1", local.GroupsOverflowed())
	}
}

func TestAccumulatorDefaultLimitsAreOn(t *testing.T) {
	var l Limits
	if l.maxGroups() != DefaultMaxGroups || l.maxRaws() != DefaultMaxRaws {
		t.Fatalf("zero limits = %d/%d", l.maxGroups(), l.maxRaws())
	}
	l = Limits{MaxGroups: -1, MaxRaws: -1}
	if l.maxGroups() != -1 || l.maxRaws() != -1 {
		t.Fatal("negative limits should disable the caps")
	}
}

func TestFaultLimitTripsBreakerOnce(t *testing.T) {
	em := &safetyEmitter{}
	a := &Advice{
		Prog: &Program{
			QueryID: "q", Tracepoint: "Tp",
			Safety: Safety{FaultLimit: 3},
		},
		Emitter: em,
	}
	for i := 0; i < 5; i++ {
		a.AdvicePanicked("Tp", "boom")
	}
	p := a.Prog
	if !p.Quarantined() {
		t.Fatal("breaker did not trip")
	}
	if p.Faults() != 5 {
		t.Fatalf("Faults = %d, want 5", p.Faults())
	}
	if len(em.quarantined) != 1 {
		t.Fatalf("notifier fired %d times, want exactly once", len(em.quarantined))
	}
	if !strings.Contains(p.QuarantineReason(), "3 advice panics") {
		t.Fatalf("reason = %q", p.QuarantineReason())
	}
}

func TestNegativeFaultLimitDisablesBreaker(t *testing.T) {
	em := &safetyEmitter{}
	a := &Advice{
		Prog:    &Program{QueryID: "q", Safety: Safety{FaultLimit: -1}},
		Emitter: em,
	}
	for i := 0; i < 100; i++ {
		a.AdvicePanicked("Tp", "boom")
	}
	if a.Prog.Quarantined() || len(em.quarantined) != 0 {
		t.Fatal("disabled breaker tripped")
	}
}

func TestCostCeilingQuarantinesBeforeMaterializing(t *testing.T) {
	em := &safetyEmitter{}
	spec := baggage.SetSpec{Kind: baggage.All, Fields: tuple.Schema{"k", "v"}}
	bag := baggage.New()
	for i := int64(0); i < 8; i++ {
		bag.Pack("q.a", spec, kvRow("k", i))
	}
	ctx := baggage.NewContext(context.Background(), bag)

	a := &Advice{
		Prog: &Program{
			QueryID: "q", Tracepoint: "Tp",
			Observe:       []int{0},
			ObserveFields: tuple.Schema{"b.host"},
			Unpacks:       []UnpackOp{{Slot: "q.a", Fields: tuple.Schema{"k", "v"}}},
			Safety:        Safety{CostCeiling: 4},
			Emit:          rawOp(),
		},
		Emitter: em,
	}
	a.Invoke(ctx, exported("h1", 0, "p"))
	if !a.Prog.Quarantined() {
		t.Fatal("cost ceiling did not quarantine")
	}
	if len(em.tuples) != 0 {
		t.Fatalf("emitted %d tuples past the ceiling", len(em.tuples))
	}
	if len(em.quarantined) != 1 || !strings.Contains(em.quarantined[0], "ceiling") {
		t.Fatalf("quarantine notices = %v", em.quarantined)
	}
	// Quarantined advice is inert: further crossings observe nothing.
	before := a.Prog.Cost.Invocations.Load()
	a.Invoke(ctx, exported("h1", 0, "p"))
	if a.Prog.Cost.Invocations.Load() != before {
		t.Fatal("quarantined advice still counts invocations")
	}
}

func TestAdviceDeliversDropRecordsBeforeJoin(t *testing.T) {
	em := &safetyEmitter{}
	spec := baggage.SetSpec{
		Kind: baggage.Agg, Fields: tuple.Schema{"k", "v"},
		GroupBy: []int{0}, Aggs: []baggage.AggField{{Pos: 1, Fn: agg.Sum}},
	}
	bag := baggage.New()
	// Two groups under a one-tuple budget: the older is evicted with a
	// tombstone; the join below still sees the survivor.
	budget := baggage.Budget{MaxTuples: 1}
	bag.PackBudgeted("q.a", spec, budget, kvRow("k1", 1))
	bag.PackBudgeted("q.a", spec, budget, kvRow("k2", 2))
	ctx := baggage.NewContext(context.Background(), bag)

	a := &Advice{
		Prog: &Program{
			QueryID: "q", Tracepoint: "Tp",
			Observe:       []int{0},
			ObserveFields: tuple.Schema{"b.host"},
			Unpacks:       []UnpackOp{{Slot: "q.a", Fields: tuple.Schema{"k", "v"}}},
			Emit:          rawOp(),
		},
		Emitter: em,
	}
	a.Invoke(ctx, exported("h1", 0, "p"))
	if len(em.drops) != 1 || em.drops[0].Slot != "q.a" || em.drops[0].Key == "" {
		t.Fatalf("drop records = %v", em.drops)
	}
	if len(em.tuples) != 1 { // only the surviving group joined
		t.Fatalf("emitted = %v", em.tuples)
	}
}

func TestPackStatsReportedOnEviction(t *testing.T) {
	em := &safetyEmitter{}
	spec := baggage.SetSpec{
		Kind: baggage.Agg, Fields: tuple.Schema{"k", "v"},
		GroupBy: []int{0}, Aggs: []baggage.AggField{{Pos: 1, Fn: agg.Sum}},
	}
	bag := baggage.New()
	ctx := baggage.NewContext(context.Background(), bag)
	a := &Advice{
		Prog: &Program{
			QueryID: "q", Tracepoint: "Tp",
			Observe:       []int{0, 5, 6},
			ObserveFields: tuple.Schema{"a.host", "a.k", "a.v"},
			Pack:          &PackOp{Slot: "q.a", Spec: spec, Source: []int{1, 2}},
			Safety:        Safety{Budget: baggage.Budget{MaxTuples: 2}},
		},
		Emitter: em,
	}
	for i := int64(0); i < 5; i++ {
		a.Invoke(ctx, exported("h1", 0, "p", tuple.String(string(rune('a'+i))), tuple.Int(i)))
	}
	if em.packStats.EvictedGroups != 3 {
		t.Fatalf("EvictedGroups = %d, want 3", em.packStats.EvictedGroups)
	}
	if em.packStats.EvictedTuples != 3 || em.packStats.EvictedBytes <= 0 {
		t.Fatalf("pack stats = %+v", em.packStats)
	}
	if got := a.Prog.Cost.TuplesPacked.Load(); got != 5 {
		t.Fatalf("TuplesPacked = %d, want 5", got)
	}
}
