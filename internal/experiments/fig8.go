package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// Fig8Config sizes the §6.1 replica-selection case study. The paper runs
// 96 stress clients against 8 DataNodes reading 8 kB from 10,000 128 MB
// files; the defaults scale the client count and dataset so the experiment
// completes in seconds of real time while preserving every sub-figure's
// shape.
type Fig8Config struct {
	Hosts          int
	ClientsPerHost int
	Files          int
	Duration       time.Duration
	Think          time.Duration
	// Fixed applies both HDFS-6268 fixes (NameNode shuffling and client
	// random selection); false reproduces the bug.
	Fixed bool
}

// DefaultFig8Config reproduces the buggy behaviour.
func DefaultFig8Config() Fig8Config {
	return Fig8Config{
		Hosts:          8,
		ClientsPerHost: 3,
		Files:          400,
		Duration:       30 * time.Second,
		Think:          2 * time.Millisecond,
	}
}

// The §6.1 queries, as printed in the paper.
const (
	fig8Q3 = `From dnop In DN.DataTransferProtocol
GroupBy dnop.host
Select dnop.host, COUNT`
	fig8Q4 = `From getloc In NN.GetBlockLocations
Join st In StressTest.DoNextOp On st -> getloc
GroupBy st.host, getloc.src
Select st.host, getloc.src, COUNT`
	fig8Q5 = `From getloc In NN.GetBlockLocations
Join st In StressTest.DoNextOp On st -> getloc
GroupBy st.host, getloc.replicas
Select st.host, getloc.replicas, COUNT`
	fig8Q6 = `From DNop In DN.DataTransferProtocol
Join st In StressTest.DoNextOp On st -> DNop
GroupBy st.host, DNop.host
Select st.host, DNop.host, COUNT`
	fig8Q7 = `From DNop In DN.DataTransferProtocol
Join getloc In NN.GetBlockLocations On getloc -> DNop
Join st In StressTest.DoNextOp On st -> getloc
Where st.host != DNop.host
GroupBy DNop.host, getloc.replicas
Select DNop.host, getloc.replicas, COUNT`
)

// Fig8Result holds the seven sub-figures.
type Fig8Result struct {
	Cfg   Fig8Config
	Hosts []string

	// ClientThroughput is Fig 8a: per-host aggregate client request
	// throughput over time.
	ClientThroughput map[string][]metrics.Point
	// NetworkTx is Fig 8b: per-host network transmit throughput.
	NetworkTx map[string][]metrics.Point
	// DNThroughput is Fig 8c: per-DataNode request throughput (Q3).
	DNThroughput map[string][]metrics.Point
	// ReadCV is Fig 8d (summarized): per client host, the number of
	// distinct files read and the coefficient of variation of per-file
	// read counts — near-zero CV means uniform random file choice (Q4).
	ReadCV map[string]struct {
		Files int
		CV    float64
	}
	// ReplicaFreq is Fig 8e: frequency each client (row) saw each
	// DataNode (col) as a replica location (Q5).
	ReplicaFreq map[string]map[string]float64
	// SelectFreq is Fig 8f: frequency each client (row) selected each
	// DataNode (col) to read from (Q6).
	SelectFreq map[string]map[string]float64
	// PrefFreq is Fig 8g: observed probability of selecting DataNode
	// (row) when DataNode (col) also held a replica (Q7, non-local reads
	// only).
	PrefFreq map[string]map[string]float64

	// Q7BaggageBytes records the serialized baggage size of a Q7 request
	// (the §6.3 ~137-byte claim).
	Q7BaggageBytes int
}

// RunFig8 executes the case study.
func RunFig8(cfg Fig8Config) (*Fig8Result, error) {
	env := simtime.NewEnv()
	res := &Fig8Result{Cfg: cfg}
	var runErr error

	env.Run(func() {
		tbCfg := workload.DefaultTestbedConfig()
		tbCfg.Hosts = cfg.Hosts
		tbCfg.HBase = false
		tbCfg.MapReduce = false
		tbCfg.NameNode.RandomizeReplicaOrder = cfg.Fixed
		tbCfg.HDFSClient.RandomReplicaSelection = cfg.Fixed
		tb := workload.NewTestbed(env, tbCfg)
		res.Hosts = tb.Hosts

		files, err := tb.StressDataset(cfg.Files, 128e6)
		if err != nil {
			runErr = err
			return
		}

		// Declare the stress-test tracepoint in the query vocabulary
		// before any client process exists — tracepoint definitions are
		// independent of running code (§3).
		tb.C.PT.Registry().Define("StressTest.DoNextOp", "op")

		q3, err := tb.C.PT.Install(fig8Q3)
		if err != nil {
			runErr = err
			return
		}
		col3 := metrics.NewCollector(q3.Plan.Emit.Emit, time.Second)
		q3.OnReport(col3.OnReport)
		q4, err := tb.C.PT.Install(fig8Q4)
		if err != nil {
			runErr = err
			return
		}
		q5, err := tb.C.PT.Install(fig8Q5)
		if err != nil {
			runErr = err
			return
		}
		q6, err := tb.C.PT.Install(fig8Q6)
		if err != nil {
			runErr = err
			return
		}
		q7, err := tb.C.PT.Install(fig8Q7)
		if err != nil {
			runErr = err
			return
		}

		// Start the stress clients.
		var clients []*workload.Workload
		id := 0
		for _, host := range tb.Hosts {
			for k := 0; k < cfg.ClientsPerHost; k++ {
				id++
				w := tb.NewStressTest(host, k, files, cfg.Think, int64(id)*7919)
				clients = append(clients, w)
				w.Start()
			}
		}

		// Sample per-host network tx throughput once per second.
		netSamples := make(map[string][]metrics.Point)
		env.Go(func() {
			prev := make(map[string]float64)
			for !env.Done() {
				env.Sleep(time.Second)
				for _, host := range tb.Hosts {
					served := tb.C.Net.LinkServed(host + ".tx")
					netSamples[host] = append(netSamples[host], metrics.Point{
						T: env.Now(), V: served - prev[host],
					})
					prev[host] = served
				}
			}
		})

		env.Sleep(cfg.Duration)
		tb.C.FlushAgents()

		// 8a: aggregate client throughput per host.
		res.ClientThroughput = make(map[string][]metrics.Point)
		perHost := make(map[string][]*workload.Workload)
		for _, w := range clients {
			perHost[w.Proc.Info.Host] = append(perHost[w.Proc.Info.Host], w)
		}
		for host, ws := range perHost {
			agg := map[time.Duration]float64{}
			for _, w := range ws {
				for _, p := range w.Rec.Throughput(time.Second) {
					agg[p.T] += p.V
				}
			}
			var ts []time.Duration
			for t := range agg {
				ts = append(ts, t)
			}
			sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
			for _, t := range ts {
				res.ClientThroughput[host] = append(res.ClientThroughput[host],
					metrics.Point{T: t, V: agg[t]})
			}
		}
		res.NetworkTx = netSamples
		res.DNThroughput = col3.Series([]int{0}, 1, true)

		// 8d: per-client-host file-read distribution (Q4).
		res.ReadCV = make(map[string]struct {
			Files int
			CV    float64
		})
		perClient := map[string][]float64{}
		for _, r := range q4.Rows() {
			perClient[r[0].Str()] = append(perClient[r[0].Str()], r[2].Float())
		}
		for host, counts := range perClient {
			res.ReadCV[host] = struct {
				Files int
				CV    float64
			}{Files: len(counts), CV: cv(counts)}
		}

		// 8e: client x DataNode replica-location frequency (Q5).
		res.ReplicaFreq = make(map[string]map[string]float64)
		for _, r := range q5.Rows() {
			client := r[0].Str()
			n := r[2].Float()
			for _, dn := range strings.Split(r[1].Str(), ",") {
				addCell(res.ReplicaFreq, client, dn, n)
			}
		}

		// 8f: client x DataNode selection frequency (Q6).
		res.SelectFreq = make(map[string]map[string]float64)
		for _, r := range q6.Rows() {
			addCell(res.SelectFreq, r[0].Str(), r[1].Str(), r[2].Float())
		}

		// 8g: chosen DataNode (row) vs co-replica (col) counts (Q7).
		chosen := make(map[string]map[string]float64)
		for _, r := range q7.Rows() {
			sel := r[0].Str()
			n := r[2].Float()
			for _, other := range strings.Split(r[1].Str(), ",") {
				if other != sel {
					addCell(chosen, sel, other, n)
				}
			}
		}
		// Normalize to P(row chosen | row and col both replicas).
		res.PrefFreq = make(map[string]map[string]float64)
		for _, a := range tb.Hosts {
			for _, b := range tb.Hosts {
				if a == b {
					continue
				}
				ab := cell(chosen, a, b)
				ba := cell(chosen, b, a)
				if ab+ba > 0 {
					addCell(res.PrefFreq, a, b, ab/(ab+ba))
				}
			}
		}

		// §6.3: Q7 baggage size for one representative request.
		res.Q7BaggageBytes = measureQ7Baggage(tb, files)
	})
	if runErr != nil {
		return nil, runErr
	}
	return res, nil
}

// measureQ7Baggage runs one stress op and estimates the per-hop baggage
// size from the cluster-wide RPC baggage byte counter.
func measureQ7Baggage(tb *workload.Testbed, files []string) int {
	w := tb.NewStressTest(tb.Hosts[0], 99, files, 0, 4242)
	before := cluster.BaggageBytes()
	callsBefore := cluster.RPCCalls()
	if err := w.RunOnce(0); err != nil {
		return 0
	}
	bytes := cluster.BaggageBytes() - before
	calls := cluster.RPCCalls() - callsBefore
	if calls == 0 {
		return 0
	}
	// Each call serializes baggage twice (request and response); report
	// the request-side average, which is what rides one hop.
	return int(bytes / (2 * calls))
}

func cv(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	mean := 0.0
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	if mean == 0 {
		return 0
	}
	varsum := 0.0
	for _, v := range vals {
		varsum += (v - mean) * (v - mean)
	}
	return sqrt(varsum/float64(len(vals))) / mean
}

func sqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	x := v
	for i := 0; i < 40; i++ {
		x = (x + v/x) / 2
	}
	return x
}

func addCell(m map[string]map[string]float64, r, c string, v float64) {
	if m[r] == nil {
		m[r] = make(map[string]float64)
	}
	m[r][c] += v
}

func cell(m map[string]map[string]float64, r, c string) float64 {
	if m[r] == nil {
		return 0
	}
	return m[r][c]
}

// Render produces the seven sub-figures as terminal text.
func (r *Fig8Result) Render() string {
	var b strings.Builder
	mode := "HDFS-6268 bug active"
	if r.Cfg.Fixed {
		mode = "fixes applied"
	}
	fmt.Fprintf(&b, "=== Fig 8 (%s) ===\n\n", mode)
	b.WriteString("--- 8a: client request throughput per host [ops/s] ---\n")
	b.WriteString(renderSeries("", r.ClientThroughput, func(v float64) string {
		return fmt.Sprintf("%.0f ops/s", v)
	}))
	b.WriteString("\n--- 8b: network transmit throughput per host ---\n")
	b.WriteString(renderSeries("", r.NetworkTx, fmtBytesRate))
	b.WriteString("\n--- 8c: DataNode request throughput (Q3) ---\n")
	b.WriteString(renderSeries("", r.DNThroughput, func(v float64) string {
		return fmt.Sprintf("%.0f ops/s", v)
	}))
	b.WriteString("\n--- 8d: file read distribution per client host (Q4) ---\n")
	var hosts []string
	for h := range r.ReadCV {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	for _, h := range hosts {
		s := r.ReadCV[h]
		fmt.Fprintf(&b, "  %-8s %4d files read, cv=%.2f (uniform random if ~small)\n", h, s.Files, s.CV)
	}
	b.WriteString("\n--- 8e: frequency client (row) sees DataNode (col) as replica (Q5) ---\n")
	b.WriteString(renderMatrix(r.ReplicaFreq, r.Hosts))
	b.WriteString("\n--- 8f: frequency client (row) selects DataNode (col) (Q6) ---\n")
	b.WriteString(renderMatrix(r.SelectFreq, r.Hosts))
	b.WriteString("\n--- 8g: P(select row | row and col both replicas), non-local (Q7) ---\n")
	b.WriteString(renderMatrix(r.PrefFreq, r.Hosts))
	fmt.Fprintf(&b, "\nQ7 baggage per request: ~%d bytes\n", r.Q7BaggageBytes)
	return b.String()
}

func renderMatrix(m map[string]map[string]float64, hosts []string) string {
	return metrics.Heatmap(hosts, hosts, func(i, j int) float64 {
		return cell(m, hosts[i], hosts[j])
	})
}
