// Command ptq parses, analyzes, and explains Pivot Tracing queries: it
// prints the canonicalized query, the output schema, and the compiled
// advice for each tracepoint in the paper's notation (§3).
//
// Usage:
//
//	ptq [-unoptimized] 'From incr In DataNodeMetrics.incrBytesRead ...'
//	echo 'From dnop In DN.DataTransferProtocol ...' | ptq
//	ptq -explain-analyze                          run the demo query, print measured plan
//	ptq -explain-analyze 'From r In Demo.Respond ...'
//
// Queries are resolved against the simulated Hadoop stack's tracepoint
// vocabulary (the same definitions the experiment harnesses use).
//
// With -explain-analyze, ptq actually executes the query over the
// scripted demo workload (querygen.DemoCase: an api request fanning out
// to two datanode reads and joining back, over tracepoints Demo.Request,
// Demo.Read, Demo.Respond) on a simulated cluster, then prints the plan
// annotated with measured per-operator counters — fires, join drops,
// filtered and packed tuples, baggage bytes, eviction counts, emits —
// plus the frontend merge line and the per-process agent breakdown. With
// no query argument it runs the demo case's own happened-before join.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/querygen"
	"repro/internal/simtime"
	"repro/internal/tracepoint"
)

// vocabulary returns the tracepoint definitions of the simulated stack.
func vocabulary() *tracepoint.Registry {
	reg := tracepoint.NewRegistry()
	reg.Define("ClientProtocols")
	reg.Define("DataNodeMetrics.incrBytesRead", "delta")
	reg.Define("DataNodeMetrics.incrBytesWritten", "delta")
	reg.Define("DN.DataTransferProtocol", "op", "size")
	reg.Define("DN.OpQueued", "op")
	reg.Define("DN.OpStart", "op")
	reg.Define("DN.TransferStart", "size", "dest")
	reg.Define("DN.TransferEnd", "size", "dest")
	reg.Define("NN.GetBlockLocations", "src", "replicas")
	reg.Define("NN.Create", "src")
	reg.Define("NN.Open", "src")
	reg.Define("NN.Rename", "src", "dst")
	reg.Define("NN.Complete", "src")
	reg.Define("RS.ClientService", "op", "row", "size")
	reg.Define("RS.Enqueue", "op")
	reg.Define("RS.Dequeue", "op")
	reg.Define("RS.ProcessEnd", "op")
	reg.Define("RS.GCStart")
	reg.Define("RS.GCEnd")
	reg.Define("StressTest.DoNextOp", "op")
	reg.Define("FileInputStream.read", "length")
	reg.Define("FileOutputStream.write", "length")
	reg.Define("RPC.Receive", "method")
	reg.Define("RPC.Respond", "method")
	reg.Define("JobComplete", "id")
	reg.Define("AM.JobStart", "id")
	reg.Define("SendResponse")
	reg.Define("ReceiveRequest")
	return reg
}

func main() {
	unopt := flag.Bool("unoptimized", false, "disable the Table 3 query rewrites")
	listTPs := flag.Bool("tracepoints", false, "list the known tracepoint vocabulary and exit")
	analyze := flag.Bool("explain-analyze", false, "execute the query over the scripted demo workload and print the measured plan")
	requests := flag.Int("requests", 1, "demo requests to execute with -explain-analyze")
	flag.Parse()

	reg := vocabulary()
	if *listTPs {
		for _, name := range reg.Names() {
			tp := reg.Lookup(name)
			fmt.Printf("%-36s exports: %s\n", name, tp.Schema())
		}
		return
	}

	text := strings.Join(flag.Args(), " ")
	if *analyze {
		out, err := runExplainAnalyze(text, *requests)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ptq:", err)
			os.Exit(1)
		}
		fmt.Print(out)
		return
	}
	if strings.TrimSpace(text) == "" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ptq:", err)
			os.Exit(1)
		}
		text = string(data)
	}
	if strings.TrimSpace(text) == "" {
		fmt.Fprintln(os.Stderr, "ptq: no query given (pass as argument or on stdin)")
		os.Exit(2)
	}

	q, err := query.Parse(text)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ptq:", err)
		os.Exit(1)
	}
	q.Name = "Q"
	opts := plan.Optimized
	opts.Optimize = !*unopt
	p, err := plan.Compile(q, reg, nil, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ptq:", err)
		os.Exit(1)
	}
	fmt.Println("query:  ", q)
	fmt.Println("outputs:", p.Schema)
	fmt.Println()
	fmt.Println(p.Explain())
}

// runExplainAnalyze installs the query (default: the demo case's own
// happened-before join) in a simulated cluster, drives the scripted demo
// workload through it, and returns the plan annotated with the measured
// per-operator counters.
func runExplainAnalyze(text string, requests int) (string, error) {
	if requests < 1 {
		requests = 1
	}
	c := querygen.DemoCase()
	if strings.TrimSpace(text) == "" {
		text = c.QueryText
	}
	var out string
	var runErr error
	env := simtime.NewEnv()
	env.Run(func() {
		cfg := cluster.DefaultConfig()
		cfg.ReportInterval = 5 * time.Millisecond
		cl := cluster.New(env, cfg)
		cl.EnableSpans(0) // span capture also enables EXPLAIN ANALYZE shipping
		x := cluster.NewScriptExec(cl, c)
		h, err := cl.PT.Install(text)
		if err != nil {
			runErr = err
			return
		}
		for i := 0; i < requests; i++ {
			if err := x.Run(); err != nil {
				runErr = err
				return
			}
			env.Sleep(time.Millisecond)
		}
		env.Sleep(3 * cfg.ReportInterval)
		cl.FlushAgents()
		out = h.ExplainAnalyze()
	})
	return out, runErr
}
