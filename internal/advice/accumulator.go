package advice

import (
	"sync/atomic"

	"repro/internal/agg"
	"repro/internal/tuple"
)

// Group is one group-by bucket of partially aggregated results. Groups are
// the unit of transport between agents and the query frontend: partial
// aggregate states merge correctly across processes (unlike final values —
// an average of averages is not the average).
type Group struct {
	Key    string
	Rep    tuple.Tuple // representative working tuple for non-agg columns
	States []*agg.State

	// seq is the group's creation stamp from a shared sequence source (see
	// Accumulator.SetSeqSource): sharded accumulators use it to restore
	// global first-seen order when merging shard drains. Zero when no
	// sequence source is attached.
	seq int64
}

// Clone deep-copies the group.
func (g *Group) Clone() *Group {
	c := &Group{Key: g.Key, Rep: g.Rep.Clone(), seq: g.seq}
	for _, s := range g.States {
		c.States = append(c.States, s.Clone())
	}
	return c
}

// Limits bounds an accumulator's memory: group-by cardinality and raw-row
// count. Both default on — an unbounded GROUP BY over a high-cardinality
// key (or a raw query that never drains) must not grow agent memory
// without bound. Zero fields select the defaults; negative fields disable
// that cap. Every capped row is counted, never silently lost.
type Limits struct {
	MaxGroups int
	MaxRaws   int
}

// Accumulator limit defaults.
const (
	DefaultMaxGroups = 16384
	DefaultMaxRaws   = 65536
)

// OverflowKey identifies the overflow group that absorbs aggregate rows
// beyond the group cap. The NUL prefix keeps it out of every real group's
// key space (keys are encoded tuple values, which never start with NUL).
const OverflowKey = "\x00overflow"

func (l Limits) maxGroups() int {
	switch {
	case l.MaxGroups < 0:
		return -1
	case l.MaxGroups == 0:
		return DefaultMaxGroups
	default:
		return l.MaxGroups
	}
}

func (l Limits) maxRaws() int {
	switch {
	case l.MaxRaws < 0:
		return -1
	case l.MaxRaws == 0:
		return DefaultMaxRaws
	default:
		return l.MaxRaws
	}
}

// Accumulator aggregates emitted working tuples for one EmitOp. The same
// type serves process-local aggregation in agents (fed by Add) and global
// aggregation at the frontend (fed by MergeGroup/MergeRaw).
type Accumulator struct {
	Op     *EmitOp
	limits Limits
	groups map[string]*Group
	order  []string
	raws   []tuple.Tuple

	// keyScratch is the reused buffer Add builds group keys in; the map
	// lookup via string(keyScratch) does not allocate, so folding into an
	// existing group is allocation-free. Accumulator is not safe for
	// concurrent use, so a single scratch suffices.
	keyScratch []byte

	// seqSrc, when set, stamps each new group with a creation sequence
	// shared across sibling shard accumulators (see ShardedAccumulator).
	seqSrc *atomic.Int64

	// Cumulative eviction accounting; survives Reset so heartbeats can
	// report exact totals for the query's lifetime.
	rawsDropped      int64
	groupsOverflowed int64
}

// NewAccumulator returns an empty accumulator for op with default limits.
func NewAccumulator(op *EmitOp) *Accumulator {
	return &Accumulator{Op: op, groups: make(map[string]*Group)}
}

// SetLimits replaces the accumulator's limits (zero value = defaults).
func (a *Accumulator) SetLimits(l Limits) { a.limits = l }

// SetSeqSource attaches a shared group-creation sequence: every group this
// accumulator creates is stamped from src, so drains of sibling shard
// accumulators can be merged back into global first-seen order.
func (a *Accumulator) SetSeqSource(src *atomic.Int64) { a.seqSrc = src }

// RawsDropped returns how many raw rows FIFO eviction has discarded.
func (a *Accumulator) RawsDropped() int64 { return a.rawsDropped }

// GroupsOverflowed returns how many rows were folded into the overflow
// group instead of their own group.
func (a *Accumulator) GroupsOverflowed() int64 { return a.groupsOverflowed }

// capRaws FIFO-evicts the oldest raw rows beyond the cap, counting each.
func (a *Accumulator) capRaws() {
	max := a.limits.maxRaws()
	if max < 0 {
		return
	}
	if excess := len(a.raws) - max; excess > 0 {
		a.raws = append(a.raws[:0:0], a.raws[excess:]...)
		a.rawsDropped += int64(excess)
	}
}

// atGroupCap reports whether creating another real group would exceed the
// cap (the overflow group itself rides above the cap).
func (a *Accumulator) atGroupCap() bool {
	max := a.limits.maxGroups()
	if max < 0 {
		return false
	}
	n := len(a.groups)
	if _, ok := a.groups[OverflowKey]; ok {
		n--
	}
	return n >= max
}

// overflowGroup returns the overflow group, creating it from a template
// tuple on first use: aggregate states start empty, and non-aggregate
// columns read "(overflow)" so the catch-all row is self-describing.
func (a *Accumulator) overflowGroup(rep tuple.Tuple) *Group {
	if g, ok := a.groups[OverflowKey]; ok {
		return g
	}
	g := &Group{Key: OverflowKey, Rep: rep.Clone()}
	if a.seqSrc != nil {
		g.seq = a.seqSrc.Add(1)
	}
	for _, col := range a.Op.Cols {
		if col.IsAgg {
			g.States = append(g.States, agg.New(col.Fn))
		} else if col.Pos >= 0 && col.Pos < len(g.Rep) {
			g.Rep[col.Pos] = tuple.String("(overflow)")
		}
	}
	a.groups[OverflowKey] = g
	a.order = append(a.order, OverflowKey)
	return g
}

// Add folds one emitted working tuple at unit weight.
func (a *Accumulator) Add(w tuple.Tuple) { a.AddWeighted(w, 1) }

// AddWeighted folds one emitted working tuple carrying a sampling
// weight (1/rate for tuples from a sampled request). Raw rows are
// appended as-is — sampling a raw query thins the rows, there is
// nothing to scale — while aggregate columns fold through the weighted
// state path, marking the group's states inexact when weight != 1.
func (a *Accumulator) AddWeighted(w tuple.Tuple, weight float64) {
	if a.Op.Raw {
		row := make(tuple.Tuple, len(a.Op.Cols))
		for i, col := range a.Op.Cols {
			row[i] = w[col.Pos]
		}
		a.raws = append(a.raws, row)
		a.capRaws()
		return
	}
	a.keyScratch = w.AppendKey(a.keyScratch[:0], a.Op.GroupBy)
	g, ok := a.groups[string(a.keyScratch)]
	if !ok {
		if a.atGroupCap() {
			a.groupsOverflowed++
			g = a.overflowGroup(w)
		} else {
			key := string(a.keyScratch)
			g = &Group{Key: key, Rep: w.Clone()}
			if a.seqSrc != nil {
				g.seq = a.seqSrc.Add(1)
			}
			for _, col := range a.Op.Cols {
				if col.IsAgg {
					g.States = append(g.States, agg.New(col.Fn))
				}
			}
			a.groups[key] = g
			a.order = append(a.order, key)
		}
	}
	k := 0
	for _, col := range a.Op.Cols {
		if !col.IsAgg {
			continue
		}
		if col.Pos >= 0 {
			g.States[k].AddWeighted(w[col.Pos], weight)
		} else {
			g.States[k].AddWeighted(tuple.Null, weight) // bare COUNT
		}
		k++
	}
}

// MergeGroup folds a partial group from another accumulator (e.g. an
// agent's report) into this one. Groups beyond the cap — including
// overflow groups arriving from agents — merge into the local overflow
// group, so "overflowed" stays exact end-to-end.
func (a *Accumulator) MergeGroup(g *Group) {
	mine, ok := a.groups[g.Key]
	if !ok {
		if g.Key == OverflowKey {
			mine = a.overflowGroup(g.Rep)
		} else if a.atGroupCap() {
			a.groupsOverflowed++
			mine = a.overflowGroup(g.Rep)
		} else {
			a.groups[g.Key] = g.Clone()
			a.order = append(a.order, g.Key)
			return
		}
	}
	for i, s := range g.States {
		mine.States[i].Merge(s)
	}
}

// MergeRaw folds a raw row from another accumulator.
func (a *Accumulator) MergeRaw(row tuple.Tuple) {
	a.raws = append(a.raws, row.Clone())
	a.capRaws()
}

// Groups snapshots the current partial groups, in first-seen order.
func (a *Accumulator) Groups() []*Group {
	out := make([]*Group, 0, len(a.order))
	for _, key := range a.order {
		out = append(out, a.groups[key])
	}
	return out
}

// Raws returns the accumulated raw rows.
func (a *Accumulator) Raws() []tuple.Tuple { return a.raws }

// Rows materializes the final result rows in Select-column order.
func (a *Accumulator) Rows() []tuple.Tuple {
	if a.Op.Raw {
		out := make([]tuple.Tuple, len(a.raws))
		copy(out, a.raws)
		return out
	}
	out := make([]tuple.Tuple, 0, len(a.order))
	for _, key := range a.order {
		g := a.groups[key]
		row := make(tuple.Tuple, len(a.Op.Cols))
		k := 0
		for i, col := range a.Op.Cols {
			if col.IsAgg {
				row[i] = g.States[k].Result()
				k++
			} else {
				row[i] = g.Rep[col.Pos]
			}
		}
		out = append(out, row)
	}
	return out
}

// Empty reports whether the accumulator holds no data.
func (a *Accumulator) Empty() bool {
	return len(a.order) == 0 && len(a.raws) == 0
}

// Reset clears the accumulator for the next reporting interval.
func (a *Accumulator) Reset() {
	a.groups = make(map[string]*Group)
	a.order = nil
	a.raws = nil
}

// absorb moves src's contents into a without cloning: groups and raw rows
// are stolen wholesale, same-key groups merge their partial states (keeping
// the earliest creation stamp), and eviction counters transfer. src must be
// exclusively owned by the caller and must not be used afterwards. This is
// the merge half of the sharded accumulator's steal-and-merge Drain.
func (a *Accumulator) absorb(src *Accumulator) {
	for _, key := range src.order {
		g := src.groups[key]
		mine, ok := a.groups[key]
		if !ok {
			a.groups[key] = g
			a.order = append(a.order, key)
			continue
		}
		if g.seq < mine.seq {
			mine.seq = g.seq
		}
		for i, st := range g.States {
			mine.States[i].Merge(st)
		}
	}
	a.raws = append(a.raws, src.raws...)
	a.rawsDropped += src.rawsDropped
	a.groupsOverflowed += src.groupsOverflowed
}
