// Latency: reproduce the paper's Q8/Q9 pattern — measure per-request
// latency with a MostRecent timestamp join, then aggregate those
// measurements per job by joining the *query* Q8 as a source of Q9.
//
//	go run ./examples/latency
package main

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/pivot"
)

func main() {
	pt := pivot.New("worker")
	tpRecv := pt.Define("ReceiveRequest")
	tpSend := pt.Define("SendResponse")
	tpJob := pt.Define("JobComplete", "id")

	// Q8: request latency = response time minus the most recent receive
	// time, computed inline from packed timestamps.
	if _, err := pt.InstallNamed("Q8", `
		From response In SendResponse
		Join request In MostRecent(ReceiveRequest) On request -> response
		Select response.time - request.time`); err != nil {
		panic(err)
	}

	// Q9: average request latency per job, joining Q8's output — a query
	// over a query.
	q9, err := pt.Install(`
		From job In JobComplete
		Join latencyMeasurement In Q8 On latencyMeasurement -> end
		GroupBy job.id
		Select job.id, COUNT(latencyMeasurement), AVERAGE(latencyMeasurement)`)
	if err != nil {
		panic(err)
	}

	// Simulate three jobs, each issuing several requests whose handling
	// time we model by manufacturing timestamps via a fake clock.
	rng := rand.New(rand.NewSource(3))
	for j := 1; j <= 3; j++ {
		ctx := pt.NewRequest(context.Background())
		now := time.Duration(0)
		for r := 0; r < 4+rng.Intn(4); r++ {
			now += time.Duration(rng.Intn(10)) * time.Millisecond
			tpRecv.Here(clockAt(ctx, now))
			// jobs get slower with their number: j*5ms ± noise
			now += time.Duration(j)*5*time.Millisecond + time.Duration(rng.Intn(3))*time.Millisecond
			tpSend.Here(clockAt(ctx, now))
		}
		tpJob.Here(clockAt(ctx, now), fmt.Sprintf("job-%d", j))
	}

	pt.Flush()
	fmt.Printf("%-8s %10s %16s\n", "job", "requests", "avg latency")
	for _, row := range q9.Rows() {
		fmt.Printf("%-8s %10s %16v\n",
			row[0], row[1], time.Duration(row[2].Float()).Round(time.Microsecond))
	}
}

// fakeClock pins the tracepoint "time" export for demonstration purposes.
type fakeClock time.Duration

func (c fakeClock) Now() time.Duration { return time.Duration(c) }

func clockAt(ctx context.Context, t time.Duration) context.Context {
	return pivot.WithClock(ctx, fakeClock(t))
}
