package scenario

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/randtest"
)

// testSeed returns the seed for scenario tests: 1 unless overridden with
// -seed / PT_SEED (the randtest replay convention).
func testSeed() int64 {
	if s, ok := randtest.Explicit(); ok {
		return s
	}
	return 1
}

// TestAllScenariosShort runs the full scenario library at the reduced
// sizing — the same subset CI runs under -race. Every checkpoint of
// every scenario must pass; a failure prints the ptbench replay command.
func TestAllScenariosShort(t *testing.T) {
	seed := testSeed()
	for _, s := range All() {
		s := s
		t.Run(s.ID, func(t *testing.T) {
			h := &Harness{Seed: seed, Short: true}
			res := h.RunScenario(s)
			if res.Err != "" {
				t.Errorf("scenario error: %s", res.Err)
			}
			for _, cp := range res.Checkpoints {
				if !cp.Passed {
					t.Errorf("checkpoint %s: %s", cp.Name, cp.Detail)
				}
			}
			if !res.Passed {
				t.Errorf("replay: go run ./cmd/ptbench -run %s -seed %d -short", s.ID, seed)
			}
		})
	}
}

// TestReportDeterminism runs a two-scenario set twice with the same seed
// and requires byte-identical JSON reports — the harness's headline
// acceptance criterion. Limplock and failover together cover the HDFS
// and HBase paths plus fault injection and query reinstallation.
func TestReportDeterminism(t *testing.T) {
	seed := testSeed()
	set := []*Scenario{Limplock(), CascadingFailover()}
	render := func() []byte {
		h := &Harness{Seed: seed, Short: true}
		rep := NewReport(seed, true, h.RunAll(set))
		out, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Errorf("same-seed runs produced different JSON reports\n%s", randtest.Replay(t, seed))
	}
}

// TestHarnessCapturesPanic: a panic in a scenario body (from any managed
// goroutine) becomes a failed result, not a crashed harness.
func TestHarnessCapturesPanic(t *testing.T) {
	s := &Scenario{
		ID: "boom", Name: "boom", ShortHosts: 1, Horizon: time.Second,
		Run: func(r *Run) error { panic("kaboom") },
	}
	h := &Harness{Seed: 1, Short: true}
	res := h.RunScenario(s)
	if res.Passed {
		t.Fatal("panicking scenario reported as passed")
	}
	if !strings.Contains(res.Err, "kaboom") {
		t.Fatalf("Err = %q, want the panic value", res.Err)
	}
}

// TestHarnessFailingCheckpoint: one failed checkpoint fails the result
// while the rest still record.
func TestHarnessFailingCheckpoint(t *testing.T) {
	s := &Scenario{
		ID: "cp", Name: "cp", ShortHosts: 1, Horizon: time.Second,
		Run: func(r *Run) error {
			r.Expect("good", nil)
			r.Expect("bad", errors.New("nope"))
			return nil
		},
	}
	res := (&Harness{Seed: 1, Short: true}).RunScenario(s)
	if res.Passed {
		t.Fatal("failing checkpoint reported as passed")
	}
	if len(res.Checkpoints) != 2 || !res.Checkpoints[0].Passed || res.Checkpoints[1].Passed {
		t.Fatalf("checkpoints = %+v", res.Checkpoints)
	}
}

// TestNoCheckpointsIsFailure: a scenario that asserts nothing must not
// count as passing (an empty Run body would otherwise go green).
func TestNoCheckpointsIsFailure(t *testing.T) {
	s := &Scenario{
		ID: "empty", Name: "empty", ShortHosts: 1, Horizon: time.Second,
		Run: func(r *Run) error { return nil },
	}
	if res := (&Harness{Seed: 1, Short: true}).RunScenario(s); res.Passed {
		t.Fatal("checkpoint-free scenario reported as passed")
	}
}

// TestLibraryShape pins the library's contract: unique IDs, ByID lookup,
// and thousand-host default topologies.
func TestLibraryShape(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range All() {
		if seen[s.ID] {
			t.Errorf("duplicate scenario ID %q", s.ID)
		}
		seen[s.ID] = true
		if ByID(s.ID) == nil {
			t.Errorf("ByID(%q) = nil", s.ID)
		}
		if s.DefaultHosts < 1000 {
			t.Errorf("%s: DefaultHosts = %d, want >= 1000", s.ID, s.DefaultHosts)
		}
		if s.ShortHosts <= 0 || s.ShortHosts > 64 {
			t.Errorf("%s: ShortHosts = %d, want in (0, 64]", s.ID, s.ShortHosts)
		}
	}
	if len(seen) < 7 {
		t.Errorf("library has %d scenarios, want >= 7", len(seen))
	}
	if ByID("no-such-scenario") != nil {
		t.Error("ByID of unknown ID != nil")
	}
}

// TestConsoleReport checks the human summary: verdicts, failed
// checkpoint detail, and the replay command line.
func TestConsoleReport(t *testing.T) {
	res := &Result{ID: "x", Name: "x", Seed: 9, Hosts: 8, Passed: false,
		Checkpoints: []CheckpointResult{{Name: "cp", Passed: false, Detail: "went sideways"}}}
	var buf bytes.Buffer
	NewReport(9, true, []*Result{res}).Console(&buf)
	out := buf.String()
	for _, want := range []string{"FAIL", "went sideways", "replay: go run ./cmd/ptbench -seed 9"} {
		if !strings.Contains(out, want) {
			t.Errorf("console output missing %q:\n%s", want, out)
		}
	}
}
