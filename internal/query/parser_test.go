package query

import (
	"strings"
	"testing"

	"repro/internal/agg"
	"repro/internal/tuple"
)

// The nine queries from the paper (Q1-Q9), in surface syntax.
var paperQueries = map[string]string{
	"Q1": `From incr In DataNodeMetrics.incrBytesRead
	       GroupBy incr.host
	       Select incr.host, SUM(incr.delta)`,
	"Q2": `From incr In DataNodeMetrics.incrBytesRead
	       Join cl In First(ClientProtocols) On cl -> incr
	       GroupBy cl.procName
	       Select cl.procName, SUM(incr.delta)`,
	"Q3": `From dnop In DN.DataTransferProtocol
	       GroupBy dnop.host
	       Select dnop.host, COUNT`,
	"Q4": `From getloc In NN.GetBlockLocations
	       Join st In StressTest.DoNextOp On st -> getloc
	       GroupBy st.host, getloc.src
	       Select st.host, getloc.src, COUNT`,
	"Q5": `From getloc In NN.GetBlockLocations
	       Join st In StressTest.DoNextOp On st -> getloc
	       GroupBy st.host, getloc.replicas
	       Select st.host, getloc.replicas, COUNT`,
	"Q6": `From DNop In DN.DataTransferProtocol
	       Join st In StressTest.DoNextOp On st -> DNop
	       GroupBy st.host, DNop.host
	       Select st.host, DNop.host, COUNT`,
	"Q7": `From DNop In DN.DataTransferProtocol
	       Join getloc In NN.GetBlockLocations On getloc -> DNop
	       Join st In StressTest.DoNextOp On st -> getloc
	       Where st.host != DNop.host
	       GroupBy DNop.host, getloc.replicas
	       Select DNop.host, getloc.replicas, COUNT`,
	"Q8": `From response In SendResponse
	       Join request In MostRecent(ReceiveRequest) On request -> response
	       Select response.time - request.time`,
	"Q9": `From job In JobComplete
	       Join latencyMeasurement In Q8 On latencyMeasurement -> end
	       GroupBy job.id
	       Select job.id, AVERAGE(latencyMeasurement)`,
}

func TestParseAllPaperQueries(t *testing.T) {
	for name, text := range paperQueries {
		q, err := Parse(text)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if q.From.Alias == "" || len(q.Select) == 0 {
			t.Errorf("%s: incomplete parse: %+v", name, q)
		}
	}
}

func TestParseQ2Structure(t *testing.T) {
	q, err := Parse(paperQueries["Q2"])
	if err != nil {
		t.Fatal(err)
	}
	if q.From.Alias != "incr" || q.From.Sources[0].Tracepoint != "DataNodeMetrics.incrBytesRead" {
		t.Errorf("From = %+v", q.From)
	}
	if len(q.Joins) != 1 {
		t.Fatalf("Joins = %+v", q.Joins)
	}
	j := q.Joins[0]
	if j.Alias != "cl" || j.Source.Tracepoint != "ClientProtocols" ||
		j.Source.Filter != FilterFirst || j.Left != "cl" || j.Right != "incr" {
		t.Errorf("Join = %+v", j)
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0] != (FieldRef{Alias: "cl", Field: "procName"}) {
		t.Errorf("GroupBy = %+v", q.GroupBy)
	}
	if len(q.Select) != 2 {
		t.Fatalf("Select = %+v", q.Select)
	}
	if q.Select[0].HasAgg || q.Select[0].Expr.(FieldRef).Field != "procName" {
		t.Errorf("Select[0] = %+v", q.Select[0])
	}
	if !q.Select[1].HasAgg || q.Select[1].Agg != agg.Sum {
		t.Errorf("Select[1] = %+v", q.Select[1])
	}
}

func TestParseBareCount(t *testing.T) {
	q, err := Parse(paperQueries["Q3"])
	if err != nil {
		t.Fatal(err)
	}
	last := q.Select[len(q.Select)-1]
	if !last.HasAgg || last.Agg != agg.Count || last.Expr != nil {
		t.Errorf("bare COUNT = %+v", last)
	}
}

func TestParseUnionSources(t *testing.T) {
	q, err := Parse(`From e In DataRPCs, ControlRPCs Select e.host`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.From.Sources) != 2 ||
		q.From.Sources[0].Tracepoint != "DataRPCs" ||
		q.From.Sources[1].Tracepoint != "ControlRPCs" {
		t.Errorf("Sources = %+v", q.From.Sources)
	}
}

func TestParseWhereExpression(t *testing.T) {
	q, err := Parse(`From e In RPCs Where e.Size < 10 && e.User != "root" Select e.host`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where) != 1 {
		t.Fatalf("Where = %+v", q.Where)
	}
	b, ok := q.Where[0].(Binary)
	if !ok || b.Op != OpAnd {
		t.Fatalf("Where = %v", q.Where[0])
	}
}

func TestParseFirstNMostRecentN(t *testing.T) {
	q, err := Parse(`From e In Tp Join d In FirstN(3, Disk) On d -> e Select e.host`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Joins[0].Source.Filter != FilterFirstN || q.Joins[0].Source.N != 3 {
		t.Errorf("FirstN source = %+v", q.Joins[0].Source)
	}
	q, err = Parse(`From e In Tp Join d In MostRecentN(7, Disk) On d -> e Select e.host`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Joins[0].Source.Filter != FilterMostRecentN || q.Joins[0].Source.N != 7 {
		t.Errorf("MostRecentN source = %+v", q.Joins[0].Source)
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	q, err := Parse(`From e In Tp Select e.a + e.b * e.c`)
	if err != nil {
		t.Fatal(err)
	}
	b := q.Select[0].Expr.(Binary)
	if b.Op != OpAdd {
		t.Fatalf("top op = %v, want +", b.Op)
	}
	if inner, ok := b.R.(Binary); !ok || inner.Op != OpMul {
		t.Fatalf("right = %v, want (b * c)", b.R)
	}
}

func TestParseUnicodeMinus(t *testing.T) {
	q, err := Parse("From response In SendResponse Select response.time − 5")
	if err != nil {
		t.Fatal(err)
	}
	if b, ok := q.Select[0].Expr.(Binary); !ok || b.Op != OpSub {
		t.Fatalf("expr = %v", q.Select[0].Expr)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`Select e.host`,
		`From`,
		`From e`,
		`From e In`,
		`From e In Tp`,
		`From e In Tp Select`,
		`From e In Tp Join`,
		`From e In Tp Join d In Disk On d e Select e.host`,
		`From e In Tp Join d In Disk On d -> Select e.host`,
		`From e In Tp GroupBy Select COUNT`,
		`From e In Tp Select SUM`,
		`From e In Tp Select SUM(`,
		`From e In Tp Where e.x < Select e.host`,
		`From e In Tp Select "unterminated`,
		`From e In Tp Select e.x @ 3`,
		`From e In First(Tp) Select e.host GroupBy e.host GroupBy e.host`,
		`From e In FirstN(0, Tp) Select e.host`,
		`From e In Tp Select e.host Select e.host`,
	}
	for _, text := range cases {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q) should fail", text)
		}
	}
}

func TestParseErrorHasLineColumn(t *testing.T) {
	_, err := Parse("From e In Tp\nWhere e.x <\nSelect e.host")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line ") {
		t.Errorf("error %q should mention the line", err)
	}
}

func TestPrintParseRoundtrip(t *testing.T) {
	for name, text := range paperQueries {
		q1, err := Parse(text)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		printed := q1.String()
		q2, err := Parse(printed)
		if err != nil {
			t.Fatalf("%s: reparse of %q: %v", name, printed, err)
		}
		if q2.String() != printed {
			t.Errorf("%s: print/parse not a fixpoint:\n  %s\n  %s", name, printed, q2.String())
		}
	}
}

func TestExprEval(t *testing.T) {
	vals := map[FieldRef]tuple.Value{
		{Alias: "e", Field: "a"}: tuple.Int(10),
		{Alias: "e", Field: "b"}: tuple.Int(3),
		{Alias: "e", Field: "s"}: tuple.String("x"),
	}
	resolve := func(f FieldRef) tuple.Value { return vals[f] }
	cases := []struct {
		text string
		want tuple.Value
	}{
		{`e.a + e.b`, tuple.Int(13)},
		{`e.a - e.b`, tuple.Int(7)},
		{`e.a * e.b`, tuple.Int(30)},
		{`e.a / 2`, tuple.Int(5)},
		{`e.a / 4`, tuple.Float(2.5)},
		{`e.a / 0`, tuple.Null},
		{`e.a > e.b`, tuple.Bool(true)},
		{`e.a <= 9`, tuple.Bool(false)},
		{`e.s = "x"`, tuple.Bool(true)},
		{`e.s != "x"`, tuple.Bool(false)},
		{`e.a > 5 && e.b < 2`, tuple.Bool(false)},
		{`e.a > 5 || e.b < 2`, tuple.Bool(true)},
		{`!(e.a > 5)`, tuple.Bool(false)},
		{`-e.b`, tuple.Int(-3)},
		{`(e.a + e.b) * 2`, tuple.Int(26)},
		{`2.5 + e.b`, tuple.Float(5.5)},
		{`true`, tuple.Bool(true)},
		{`false || e.a = 10`, tuple.Bool(true)},
	}
	for _, c := range cases {
		q, err := Parse("From e In Tp Select " + c.text)
		if err != nil {
			t.Errorf("%s: %v", c.text, err)
			continue
		}
		got := q.Select[0].Expr.Eval(resolve)
		if !got.Equal(c.want) && !(got.IsNull() && c.want.IsNull()) {
			t.Errorf("%s = %v, want %v", c.text, got, c.want)
		}
	}
}

func TestFieldRefsCollection(t *testing.T) {
	q, _ := Parse(`From e In Tp Where e.a + e.b > e.a Select COUNT`)
	refs := FieldRefs(q.Where[0])
	if len(refs) != 2 {
		t.Fatalf("FieldRefs = %v, want 2 distinct", refs)
	}
}
