package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// Fig9Config sizes the §6.2 network limplock case study: an HBase workload
// experiences end-to-end latency spikes after one host's NIC degrades from
// 1 Gbit to 100 Mbit; Pivot Tracing queries decompose request latency per
// component and identify the bottleneck host.
type Fig9Config struct {
	Hosts    int
	Duration time.Duration
	// FaultAt downgrades FaultHost's NIC at this offset.
	FaultAt   time.Duration
	FaultHost int // index into the worker hosts (the paper's host B = 1)
	Scanners  int
	Getters   int
}

// DefaultFig9Config mirrors the case study.
func DefaultFig9Config() Fig9Config {
	return Fig9Config{
		Hosts:     8,
		Duration:  60 * time.Second,
		FaultAt:   20 * time.Second,
		FaultHost: 1,
		Scanners:  4,
		Getters:   4,
	}
}

// The latency-decomposition queries: Q8-style timestamp joins (§6.2),
// grouped by host so the faulty component stands out.
const (
	fig9QRPC = `From response In RPC.Respond
Join request In MostRecent(RPC.Receive) On request -> response
GroupBy response.host, response.procName
Select response.host, response.procName, AVERAGE(response.time - request.time)`
	fig9QDNXfer = `From t2 In DN.TransferEnd
Join t1 In MostRecent(DN.TransferStart) On t1 -> t2
GroupBy t2.host, t2.dest
Select t2.host, t2.dest, AVERAGE(t2.time - t1.time)`
	fig9QDNQueue = `From s In DN.OpStart
Join q In MostRecent(DN.OpQueued) On q -> s
GroupBy s.host
Select s.host, AVERAGE(s.time - q.time)`
	fig9QRSQueue = `From d In RS.Dequeue
Join e In MostRecent(RS.Enqueue) On e -> d
GroupBy d.host
Select d.host, AVERAGE(d.time - e.time)`
	fig9QRSProc = `From p In RS.ProcessEnd
Join d In MostRecent(RS.Dequeue) On d -> p
GroupBy p.host
Select p.host, AVERAGE(p.time - d.time)`
)

// Fig9Result holds the three sub-figures.
type Fig9Result struct {
	Cfg       Fig9Config
	Hosts     []string
	FaultHost string

	// Latencies is Fig 9a: scan request latencies over time (seconds).
	Latencies []metrics.Point
	// Decomposition is Fig 9b: average span per component per host, in
	// seconds, before and after the fault.
	Before, After map[string]map[string]float64 // component -> host -> seconds
	// NetworkTx is Fig 9c: per-host network transmit throughput.
	NetworkTx map[string][]metrics.Point
}

// RunFig9 executes the case study.
func RunFig9(cfg Fig9Config) (*Fig9Result, error) {
	env := simtime.NewEnv()
	res := &Fig9Result{Cfg: cfg}
	var runErr error

	env.Run(func() {
		tbCfg := workload.DefaultTestbedConfig()
		tbCfg.Hosts = cfg.Hosts
		tbCfg.MapReduce = false
		// Two replicas per store block: most RegionServer reads cross the
		// network, so the limping NIC is exercised from both sides.
		tbCfg.NameNode.Replication = 2
		tb := workload.NewTestbed(env, tbCfg)
		res.Hosts = tb.Hosts
		res.FaultHost = tb.Hosts[cfg.FaultHost%len(tb.Hosts)]
		if err := tb.InitHBaseStores(4e9); err != nil {
			runErr = err
			return
		}

		type span struct {
			name string
			text string
			col  [2]*metrics.Collector // before/after
		}
		spans := []*span{
			{name: "RPC latency", text: fig9QRPC},
			{name: "DN transfer", text: fig9QDNXfer},
			{name: "DN queued", text: fig9QDNQueue},
			{name: "RS queue", text: fig9QRSQueue},
			{name: "RS process", text: fig9QRSProc},
		}
		installed := map[string]*metrics.Collector{}
		for _, sp := range spans {
			h, err := tb.C.PT.Install(sp.text)
			if err != nil {
				runErr = fmt.Errorf("%s: %w", sp.name, err)
				return
			}
			col := metrics.NewCollector(h.Plan.Emit.Emit, time.Second)
			h.OnReport(col.OnReport)
			installed[sp.name] = col
		}

		// Workloads: a mix of scans (bulk, network-heavy) and gets.
		var scans []*workload.Workload
		for i := 0; i < cfg.Scanners; i++ {
			w := tb.NewHScan(tb.Hosts[i%len(tb.Hosts)], int64(100+i))
			scans = append(scans, w)
			w.Start()
		}
		for i := 0; i < cfg.Getters; i++ {
			tb.NewHGet(tb.Hosts[(i+2)%len(tb.Hosts)], int64(200+i)).Start()
		}

		// Sample per-host network throughput.
		netSamples := make(map[string][]metrics.Point)
		env.Go(func() {
			prev := make(map[string]float64)
			for !env.Done() {
				env.Sleep(time.Second)
				for _, host := range tb.Hosts {
					served := tb.C.Net.LinkServed(host + ".tx")
					netSamples[host] = append(netSamples[host], metrics.Point{
						T: env.Now(), V: served - prev[host],
					})
					prev[host] = served
				}
			}
		})

		env.Sleep(cfg.FaultAt)
		tb.C.Host(res.FaultHost).SetNICRate(netsim.HundredMbit)
		env.Sleep(cfg.Duration - cfg.FaultAt)
		tb.C.FlushAgents()
		res.Before = snapshotSpans(installed, 0, cfg.FaultAt)
		res.After = snapshotSpans(installed, cfg.FaultAt, cfg.Duration+time.Second)

		// 9a: scan latencies over time.
		for _, w := range scans {
			res.Latencies = append(res.Latencies, w.Rec.Latencies()...)
		}
		sort.Slice(res.Latencies, func(i, j int) bool {
			return res.Latencies[i].T < res.Latencies[j].T
		})
		res.NetworkTx = netSamples
	})
	if runErr != nil {
		return nil, runErr
	}
	return res, nil
}

// snapshotSpans reads the mean span (seconds) per component/host over the
// time window [from, to). RPC latency rows carry (host, proc, avg); the
// others carry (host, avg).
func snapshotSpans(cols map[string]*metrics.Collector, from, to time.Duration) map[string]map[string]float64 {
	out := make(map[string]map[string]float64)
	for name, col := range cols {
		var series map[string][]metrics.Point
		switch name {
		case "RPC latency":
			series = col.Series([]int{0, 1}, 2, false)
		case "DN transfer":
			series = col.Series([]int{0, 1}, 2, false) // keyed src/dest
		default:
			series = col.Series([]int{0}, 1, false)
		}
		m := make(map[string]float64)
		for key, pts := range series {
			sum, n := 0.0, 0
			for _, p := range pts {
				if p.T >= from && p.T < to {
					sum += p.V
					n++
				}
			}
			if n > 0 {
				m[key] = sum / float64(n) / float64(time.Second) // ns -> s
			}
		}
		out[name] = m
	}
	return out
}

// Render produces the three sub-figures as terminal text.
func (r *Fig9Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== Fig 9: network limplock on %s at t=%v ===\n\n", r.FaultHost, r.Cfg.FaultAt)

	b.WriteString("--- 9a: scan request latencies over time ---\n")
	vals := make([]float64, 0, len(r.Latencies))
	for _, p := range r.Latencies {
		vals = append(vals, p.V)
	}
	fmt.Fprintf(&b, "  %d requests, sparkline of latency: %s\n", len(vals), metrics.Sparkline(bin(vals, 60)))

	b.WriteString("\n--- 9b: mean span per component/host, before vs after fault [s] ---\n")
	var comps []string
	for c := range r.After {
		comps = append(comps, c)
	}
	sort.Strings(comps)
	for _, c := range comps {
		fmt.Fprintf(&b, "  %s:\n", c)
		var hosts []string
		for h := range r.After[c] {
			hosts = append(hosts, h)
		}
		sort.Strings(hosts)
		for _, h := range hosts {
			before := 0.0
			if r.Before[c] != nil {
				before = r.Before[c][h]
			}
			marker := ""
			if strings.HasPrefix(h, r.FaultHost) {
				marker = "   <-- faulty host"
			}
			fmt.Fprintf(&b, "    %-24s %10s -> %10s%s\n", h,
				fmtSeconds(before), fmtSeconds(r.After[c][h]), marker)
		}
	}

	b.WriteString("\n--- 9c: network transmit throughput per host ---\n")
	b.WriteString(renderSeries("", r.NetworkTx, fmtBytesRate))
	return b.String()
}

// bin downsamples values to at most n buckets by averaging.
func bin(vals []float64, n int) []float64 {
	if len(vals) <= n {
		return vals
	}
	out := make([]float64, n)
	per := float64(len(vals)) / float64(n)
	for i := 0; i < n; i++ {
		lo, hi := int(float64(i)*per), int(float64(i+1)*per)
		if hi > len(vals) {
			hi = len(vals)
		}
		sum := 0.0
		for _, v := range vals[lo:hi] {
			sum += v
		}
		if hi > lo {
			out[i] = sum / float64(hi-lo)
		}
	}
	return out
}
