package simtime

import (
	"sync"
	"testing"
	"time"
)

func TestRWLockExclusiveSerializes(t *testing.T) {
	e := NewEnv()
	var end time.Duration
	e.Run(func() {
		l := e.NewRWLock()
		wg := e.NewWaitGroup()
		for i := 0; i < 4; i++ {
			wg.Add(1)
			e.Go(func() {
				defer wg.Done()
				l.Lock()
				e.Sleep(time.Second)
				l.Unlock()
			})
		}
		wg.Wait()
		end = e.Now()
	})
	if end != 4*time.Second {
		t.Fatalf("4 writers finished at %v, want 4s", end)
	}
}

func TestRWLockReadersShare(t *testing.T) {
	e := NewEnv()
	var end time.Duration
	e.Run(func() {
		l := e.NewRWLock()
		wg := e.NewWaitGroup()
		for i := 0; i < 4; i++ {
			wg.Add(1)
			e.Go(func() {
				defer wg.Done()
				l.RLock()
				e.Sleep(time.Second)
				l.RUnlock()
			})
		}
		wg.Wait()
		end = e.Now()
	})
	if end != time.Second {
		t.Fatalf("4 readers finished at %v, want 1s (concurrent)", end)
	}
}

func TestRWLockWriterBlocksLaterReaders(t *testing.T) {
	e := NewEnv()
	var readerDone time.Duration
	e.Run(func() {
		l := e.NewRWLock()
		wg := e.NewWaitGroup()

		// Reader 1 holds the lock for 1s.
		l.RLock()
		wg.Add(2)
		e.Go(func() {
			defer wg.Done()
			e.Sleep(10 * time.Millisecond) // writer arrives second
			l.Lock()
			e.Sleep(time.Second)
			l.Unlock()
		})
		e.Go(func() {
			defer wg.Done()
			e.Sleep(20 * time.Millisecond) // reader 2 arrives after the writer
			l.RLock()
			readerDone = e.Now()
			l.RUnlock()
		})
		e.Sleep(time.Second)
		l.RUnlock() // release reader 1 at t=1s -> writer runs 1s..2s
		wg.Wait()
	})
	// Reader 2 must wait for the queued writer (no reader barging).
	if readerDone < 2*time.Second {
		t.Fatalf("late reader entered at %v, want >= 2s (after writer)", readerDone)
	}
}

func TestRWLockFIFOFairnessUnderContention(t *testing.T) {
	// The starvation regression: under heavy write contention every
	// closed-loop client must make progress (broadcast-based wakeup let a
	// few goroutines win every time).
	e := NewEnv()
	counts := make([]int, 8)
	e.Run(func() {
		l := e.NewRWLock()
		var mu sync.Mutex
		wg := e.NewWaitGroup()
		stopAt := 2 * time.Second
		for i := range counts {
			i := i
			wg.Add(1)
			e.Go(func() {
				defer wg.Done()
				for e.Now() < stopAt {
					l.Lock()
					e.Sleep(time.Millisecond)
					l.Unlock()
					mu.Lock()
					counts[i]++
					mu.Unlock()
				}
			})
		}
		wg.Wait()
	})
	total := 0
	for _, c := range counts {
		total += c
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("client %d starved: counts = %v", i, counts)
		}
		// Fair share is total/8; demand near-equality.
		if c < total/16 {
			t.Errorf("client %d got %d of %d ops — unfair", i, c, total)
		}
	}
}

func TestRWLockReaderBatchAfterWriter(t *testing.T) {
	e := NewEnv()
	var r1, r2 time.Duration
	e.Run(func() {
		l := e.NewRWLock()
		l.Lock()
		wg := e.NewWaitGroup()
		wg.Add(2)
		e.Go(func() {
			defer wg.Done()
			e.Sleep(time.Millisecond)
			l.RLock()
			e.Sleep(time.Second)
			r1 = e.Now()
			l.RUnlock()
		})
		e.Go(func() {
			defer wg.Done()
			e.Sleep(2 * time.Millisecond)
			l.RLock()
			e.Sleep(time.Second)
			r2 = e.Now()
			l.RUnlock()
		})
		e.Sleep(100 * time.Millisecond)
		l.Unlock() // both queued readers enter together
		wg.Wait()
	})
	// Both readers ran concurrently after the writer released.
	if r1 > 1200*time.Millisecond || r2 > 1200*time.Millisecond {
		t.Fatalf("readers finished at %v, %v — not batched", r1, r2)
	}
}

func TestRWLockMisuse(t *testing.T) {
	e := NewEnv()
	e.Run(func() {
		l := e.NewRWLock()
		func() {
			defer func() {
				if recover() == nil {
					t.Error("Unlock without Lock should panic")
				}
			}()
			l.Unlock()
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Error("RUnlock without RLock should panic")
				}
			}()
			l.RUnlock()
		}()
	})
}

func TestRWLockUncontendedFastPath(t *testing.T) {
	e := NewEnv()
	e.Run(func() {
		l := e.NewRWLock()
		l.Lock()
		l.Unlock()
		l.RLock()
		l.RUnlock()
		if e.Now() != 0 {
			t.Errorf("uncontended lock advanced time to %v", e.Now())
		}
	})
}
