package bus

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// Chaos suite: deterministic fault schedules driven through faultinject,
// exercising the resilience layer — reconnecting links, per-connection
// frame-error isolation, and connection hygiene on every FetchServerStatus
// exit path. All tests use fixed seeds and pass under -race -count=N.

// collector accumulates relayed messages on a local bus.
type collector struct {
	mu   sync.Mutex
	msgs []string
}

func (c *collector) add(msg any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgs = append(c.msgs, msg.(string))
}

func (c *collector) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

// chaosOpts is the deterministic reconnect schedule used across the suite.
func chaosOpts(seed int64) LinkOptions {
	return LinkOptions{
		Reconnect:   true,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		JitterSeed:  seed,
	}
}

func TestLinkReconnectsAfterServerRestart(t *testing.T) {
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	recvBus := New()
	var got collector
	recvBus.Subscribe("tp", got.add)
	recvLink, err := ConnectOptions(recvBus, addr, stringCodec{}, nil, []string{"tp"}, chaosOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	defer recvLink.Close()

	sendBus := New()
	var dropped collector
	sopts := chaosOpts(2)
	sopts.OnDrop = func(topic string, msg any) { dropped.add(msg) }
	sendLink, err := ConnectOptions(sendBus, addr, stringCodec{}, []string{"tp"}, nil, sopts)
	if err != nil {
		t.Fatal(err)
	}
	defer sendLink.Close()

	sendBus.Publish("tp", "before")
	waitFor(t, "pre-outage relay", func() bool { return got.len() == 1 })

	// Outage: the server dies; both links must notice and start redialing.
	srv.Close()
	waitFor(t, "links to notice the outage", func() bool {
		return !sendLink.Connected() && !recvLink.Connected()
	})

	// Messages published mid-outage are reported via OnDrop, not lost
	// silently.
	sendBus.Publish("tp", "during")
	waitFor(t, "outage drop accounting", func() bool { return dropped.len() == 1 })
	if n := sendLink.Drops(); n != 1 {
		t.Errorf("link drops = %d, want 1", n)
	}

	// Recovery: restart the bus at the same address; links reconnect
	// within the backoff bound and bridging resumes, including a replay
	// of the dropped message via direct Send.
	srv2, err := Serve(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	waitFor(t, "links to reconnect", func() bool {
		return sendLink.Connected() && recvLink.Connected()
	})
	if n := sendLink.Reconnects(); n < 1 {
		t.Errorf("send link reconnects = %d, want >= 1", n)
	}
	for _, m := range dropped.msgs {
		if err := sendLink.Send("tp", m); err != nil {
			t.Fatalf("replay Send: %v", err)
		}
	}
	sendBus.Publish("tp", "after")
	waitFor(t, "post-outage relay", func() bool { return got.len() == 3 })
	want := map[string]bool{"before": true, "during": true, "after": true}
	for _, m := range got.msgs {
		if !want[m] {
			t.Errorf("unexpected message %q (got %v)", m, got.msgs)
		}
		delete(want, m)
	}
	if len(want) > 0 {
		t.Errorf("missing messages: %v", want)
	}
}

func TestLinkSurvivesRepeatedInjectedCuts(t *testing.T) {
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	recvBus := New()
	var got collector
	recvBus.Subscribe("tp", got.add)
	recvLink, err := ConnectOptions(recvBus, srv.Addr(), stringCodec{}, nil, []string{"tp"}, chaosOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	defer recvLink.Close()

	// The sender's connections are severed by the injector after every
	// 4th write; the link must redial each time and keep going.
	inj := faultinject.New(faultinject.Faults{Seed: 7, CutAfterWrites: 4})
	sopts := chaosOpts(4)
	sopts.Dial = inj.Dialer(nil)
	var dropped collector
	sopts.OnDrop = func(topic string, msg any) { dropped.add(msg) }
	sendBus := New()
	sendLink, err := ConnectOptions(sendBus, srv.Addr(), stringCodec{}, []string{"tp"}, nil, sopts)
	if err != nil {
		t.Fatal(err)
	}
	defer sendLink.Close()

	const total = 20
	for i := 0; i < total; i++ {
		sendBus.Publish("tp", "m")
		time.Sleep(time.Millisecond)
	}
	// Every publish is either relayed or accounted for as dropped; with
	// cuts every 4 writes the link must have reconnected at least twice.
	waitFor(t, "all messages accounted for", func() bool {
		return got.len()+dropped.len() == total
	})
	if cuts := inj.Cuts(); cuts < 2 {
		t.Errorf("injector cuts = %d, want >= 2", cuts)
	}
	if n := sendLink.Reconnects(); n < 2 {
		t.Errorf("reconnects = %d, want >= 2", n)
	}
	if got.len() == 0 {
		t.Error("no messages relayed at all")
	}
}

func TestServerToleratesMalformedFramesOnUnrelatedConn(t *testing.T) {
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	recvBus := New()
	var got collector
	recvBus.Subscribe("tp", got.add)
	recvLink, err := Connect(recvBus, srv.Addr(), stringCodec{}, nil, []string{"tp"})
	if err != nil {
		t.Fatal(err)
	}
	defer recvLink.Close()

	sendBus := New()
	sendLink, err := Connect(sendBus, srv.Addr(), stringCodec{}, []string{"tp"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sendLink.Close()

	sendBus.Publish("tp", "one")
	waitFor(t, "healthy relay", func() bool { return got.len() == 1 })

	// A rogue connection sends garbage: an absurd topic length, then a
	// zero-length topic, then a frame cut mid-payload.
	for _, garbage := range [][]byte{
		binary.AppendUvarint(nil, 1<<40),
		{0x00},
		{0x01, 't', 0x0A, 'p', 'a', 'r'}, // promises 10 payload bytes, sends 3
	} {
		rogue, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		rogue.Write(garbage)
		rogue.Close()
	}
	waitFor(t, "bad frames counted", func() bool {
		return srv.Telemetry().Snapshot().Counters["bus.server.badframes"] >= 2
	})

	// The healthy pair keeps relaying.
	sendBus.Publish("tp", "two")
	waitFor(t, "relay after garbage", func() bool { return got.len() == 2 })
}

func TestServerToleratesTruncatedFrameFromInjectedCut(t *testing.T) {
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	recvBus := New()
	var got collector
	recvBus.Subscribe("tp", got.add)
	recvLink, err := Connect(recvBus, srv.Addr(), stringCodec{}, nil, []string{"tp"})
	if err != nil {
		t.Fatal(err)
	}
	defer recvLink.Close()

	// A victim connection is severed mid-frame: the injector lets 2 bytes
	// of the third write (announce, then one whole publish, then this one)
	// through, leaving a truncated frame on the server's wire.
	inj := faultinject.New(faultinject.Faults{Seed: 5, CutAfterWrites: 3, TruncateFinalWrite: 2})
	victimBus := New()
	vopts := LinkOptions{Dial: inj.Dialer(nil)}
	victimLink, err := ConnectOptions(victimBus, srv.Addr(), stringCodec{}, []string{"tp"}, nil, vopts)
	if err != nil {
		t.Fatal(err)
	}
	defer victimLink.Close()

	victimBus.Publish("tp", "whole")  // write 1: delivered intact
	victimBus.Publish("tp", "never!") // write 2: truncated to 2 bytes, then cut
	waitFor(t, "intact frame relayed", func() bool { return got.len() == 1 })
	waitFor(t, "truncated frame detected", func() bool {
		return srv.Telemetry().Snapshot().Counters["bus.server.badframes"] >= 1
	})

	// Unrelated connections are unaffected.
	sendBus := New()
	sendLink, err := Connect(sendBus, srv.Addr(), stringCodec{}, []string{"tp"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sendLink.Close()
	sendBus.Publish("tp", "still alive")
	waitFor(t, "relay after truncated frame", func() bool { return got.len() == 2 })
	if got.msgs[0] != "whole" || got.msgs[1] != "still alive" {
		t.Errorf("messages = %v", got.msgs)
	}
}

// Frames published while no one subscribes to their topic are parked in
// the server's bounded retention buffer and flushed — oldest first — to
// the next subscriber, instead of being relayed into an empty room. This
// is what makes an agent's replay safe when the frontend is itself still
// reconnecting.
func TestServerParksFramesUntilSubscriberArrives(t *testing.T) {
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sendBus := New()
	sendLink, err := Connect(sendBus, srv.Addr(), stringCodec{}, []string{"tp"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sendLink.Close()

	// No subscriber for "tp" is connected: both publishes must be parked.
	sendBus.Publish("tp", "first")
	sendBus.Publish("tp", "second")
	waitFor(t, "frames parked", func() bool {
		return srv.Telemetry().Snapshot().Gauges["bus.server.retained"] == 2
	})

	recvBus := New()
	var got collector
	recvBus.Subscribe("tp", got.add)
	recvLink, err := Connect(recvBus, srv.Addr(), stringCodec{}, nil, []string{"tp"})
	if err != nil {
		t.Fatal(err)
	}
	defer recvLink.Close()

	waitFor(t, "parked backlog flushed", func() bool { return got.len() == 2 })
	if got.msgs[0] != "first" || got.msgs[1] != "second" {
		t.Errorf("backlog order = %v, want [first second]", got.msgs)
	}
	if g := srv.Telemetry().Snapshot().Gauges["bus.server.retained"]; g != 0 {
		t.Errorf("retained gauge after flush = %d, want 0", g)
	}

	// With the subscriber connected, traffic relays directly again.
	sendBus.Publish("tp", "third")
	waitFor(t, "live relay after flush", func() bool { return got.len() == 3 })
}

// The retention buffer is bounded: overflow evicts the oldest parked
// frame and counts it, so a dead topic cannot grow server memory without
// bound or hide its losses.
func TestServerRetentionCapEvictsOldestAndCounts(t *testing.T) {
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sendBus := New()
	sendLink, err := Connect(sendBus, srv.Addr(), stringCodec{}, []string{"tp"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sendLink.Close()

	const over = 5
	for i := 0; i < retainPerTopic+over; i++ {
		sendBus.Publish("tp", fmt.Sprintf("m%03d", i))
	}
	waitFor(t, "evictions counted", func() bool {
		snap := srv.Telemetry().Snapshot()
		return snap.Counters["bus.server.retained.dropped"] == over &&
			snap.Gauges["bus.server.retained"] == retainPerTopic
	})

	recvBus := New()
	var got collector
	recvBus.Subscribe("tp", got.add)
	recvLink, err := Connect(recvBus, srv.Addr(), stringCodec{}, nil, []string{"tp"})
	if err != nil {
		t.Fatal(err)
	}
	defer recvLink.Close()

	waitFor(t, "capped backlog flushed", func() bool { return got.len() == retainPerTopic })
	// The survivors are the newest frames, still in order.
	if got.msgs[0] != fmt.Sprintf("m%03d", over) {
		t.Errorf("oldest surviving frame = %q, want m%03d", got.msgs[0], over)
	}
}

// Regression test: FetchServerStatus must close its connection on the
// read-timeout path (dial succeeded, no response arrived).
func TestFetchServerStatusClosesConnOnTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			accepted <- conn
		}
	}()

	if _, err := FetchServerStatus(ln.Addr().String(), 100*time.Millisecond); err == nil {
		t.Fatal("FetchServerStatus succeeded against a mute server")
	}
	conn := <-accepted
	defer conn.Close()
	// If the client closed its side, our read unblocks with EOF promptly;
	// a leaked connection would leave the read hanging until our deadline.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 64)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				t.Fatal("client connection still open after timeout: leak")
			}
			return // EOF/reset: the client closed its connection
		}
		_ = n // the status request frame itself
	}
}
