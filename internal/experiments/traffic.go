package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/query"
	"repro/internal/simtime"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// TrafficConfig sizes the Fig 6 comparison: the same Q2-style query
// evaluated with Pivot Tracing's optimized in-baggage strategy versus the
// unoptimized global-evaluation strategy.
type TrafficConfig struct {
	Hosts        int
	Readers      int
	OpsPerReader int
	Files        int
}

// DefaultTrafficConfig runs the comparison at the paper's scale.
func DefaultTrafficConfig() TrafficConfig {
	return TrafficConfig{Hosts: 8, Readers: 4, OpsPerReader: 400, Files: 16}
}

// TrafficResult compares the two evaluation strategies.
type TrafficResult struct {
	Cfg TrafficConfig

	// Optimized strategy (Fig 6b): per-DataNode tuples emitted to the
	// process-local aggregator versus rows actually reported to the
	// frontend (the §4 claim: ~600/s collapses to ~6/s per DataNode).
	OptEmittedPerDNPerSec  float64
	OptReportedPerDNPerSec float64

	// Baseline strategy (Fig 6a): tuples shipped to the central evaluator
	// per DataNode per second (every crossing).
	BaseEmittedPerDNPerSec float64

	// ResultsMatch records whether both strategies produced identical
	// result rows.
	ResultsMatch       bool
	OptRows, BaseRows  []tuple.Tuple
	BaselineBaggageAvg float64 // average baggage bytes per RPC, baseline run
}

const trafficQuery = `From incr In DataNodeMetrics.incrBytesRead
Join cl In First(ClientProtocols) On cl -> incr
GroupBy cl.procName
Select cl.procName, SUM(incr.delta)`

// RunTraffic executes both strategies on identical workloads.
func RunTraffic(cfg TrafficConfig) (*TrafficResult, error) {
	res := &TrafficResult{Cfg: cfg}

	// ---- Optimized (in-baggage) run ----
	{
		env := simtime.NewEnv()
		var runErr error
		env.Run(func() {
			tb, err := trafficTestbed(env, cfg)
			if err != nil {
				runErr = err
				return
			}
			h, err := tb.C.PT.Install(trafficQuery)
			if err != nil {
				runErr = err
				return
			}
			ws, err := makeWorkloads(tb, cfg)
			if err != nil {
				runErr = err
				return
			}
			start := env.Now()
			runWorkloads(env, ws, cfg.OpsPerReader)
			secs := (env.Now() - start).Seconds()
			env.Sleep(2 * time.Second) // final reporting intervals
			tb.C.FlushAgents()
			res.OptRows = h.Rows()

			var emitted, reported int64
			dns := 0
			for _, dn := range tb.DNs {
				st := dn.Proc.Agent.Stats()
				emitted += st.TuplesEmitted
				reported += st.RowsReported
				dns++
			}
			res.OptEmittedPerDNPerSec = float64(emitted) / float64(dns) / secs
			res.OptReportedPerDNPerSec = float64(reported) / float64(dns) / secs
		})
		if runErr != nil {
			return nil, runErr
		}
	}

	// ---- Baseline (global evaluation) run ----
	{
		env := simtime.NewEnv()
		var runErr error
		env.Run(func() {
			tb, err := trafficTestbed(env, cfg)
			if err != nil {
				runErr = err
				return
			}
			q, err := query.Parse(trafficQuery)
			if err != nil {
				runErr = err
				return
			}
			ev, err := baseline.New(q, tb.C.PT.Registry())
			if err != nil {
				runErr = err
				return
			}
			ws, err := makeWorkloads(tb, cfg)
			if err != nil {
				runErr = err
				return
			}
			// Weave after workload processes exist (so every process that
			// defines the tracepoints has a probe) and before any ops run.
			for tp, probe := range ev.Probes() {
				tb.C.WeaveAll(tp, probe)
			}
			start := env.Now()
			runWorkloads(env, ws, cfg.OpsPerReader)
			secs := (env.Now() - start).Seconds()
			rows, err := ev.Evaluate()
			if err != nil {
				runErr = err
				return
			}
			res.BaseRows = rows
			tuples, bag := ev.Stats()
			res.BaseEmittedPerDNPerSec = float64(tuples) / float64(len(tb.DNs)) / secs
			if tuples > 0 {
				res.BaselineBaggageAvg = float64(bag) / float64(tuples)
			}
		})
		if runErr != nil {
			return nil, runErr
		}
	}

	res.ResultsMatch = rowsEqualIgnoringOrder(res.OptRows, res.BaseRows)
	return res, nil
}

func trafficTestbed(env *simtime.Env, cfg TrafficConfig) (*workload.Testbed, error) {
	tbCfg := workload.DefaultTestbedConfig()
	tbCfg.Hosts = cfg.Hosts
	tbCfg.HBase = false
	tbCfg.MapReduce = false
	return workload.NewTestbed(env, tbCfg), nil
}

func makeWorkloads(tb *workload.Testbed, cfg TrafficConfig) ([]*workload.Workload, error) {
	var ws []*workload.Workload
	for i := 0; i < cfg.Readers; i++ {
		w, err := tb.NewFSRead(workload.HostName(i%cfg.Hosts),
			fmt.Sprintf("FSREAD-%d", i), 4e6, cfg.Files, int64(i+1))
		if err != nil {
			return nil, err
		}
		ws = append(ws, w)
	}
	return ws, nil
}

// runWorkloads performs exactly n ops per workload, concurrently, so both
// evaluation strategies observe identical executions.
func runWorkloads(env *simtime.Env, ws []*workload.Workload, n int) {
	wg := env.NewWaitGroup()
	for _, w := range ws {
		w := w
		wg.Add(1)
		env.Go(func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if err := w.RunOnce(i); err != nil {
					return
				}
			}
		})
	}
	wg.Wait()
}

// rowsEqualIgnoringOrder compares result row multisets. The workloads are
// seeded identically, so both strategies see the same executions.
func rowsEqualIgnoringOrder(a, b []tuple.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(t tuple.Tuple) string { return t.String() }
	as := make([]string, len(a))
	bs := make([]string, len(b))
	for i := range a {
		as[i] = key(a[i])
		bs[i] = key(b[i])
	}
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// Render summarizes the comparison.
func (r *TrafficResult) Render() string {
	var b strings.Builder
	b.WriteString("=== Fig 6: tuple traffic, optimized vs global evaluation ===\n")
	fmt.Fprintf(&b, "optimized:  %8.1f tuples/s emitted per DataNode -> %6.1f rows/s reported (%.0fx reduction)\n",
		r.OptEmittedPerDNPerSec, r.OptReportedPerDNPerSec,
		safeDiv(r.OptEmittedPerDNPerSec, r.OptReportedPerDNPerSec))
	fmt.Fprintf(&b, "baseline:   %8.1f tuples/s shipped per DataNode to the central evaluator\n",
		r.BaseEmittedPerDNPerSec)
	fmt.Fprintf(&b, "optimized vs baseline global traffic: %.0fx less\n",
		safeDiv(r.BaseEmittedPerDNPerSec, r.OptReportedPerDNPerSec))
	fmt.Fprintf(&b, "results identical: %v\n", r.ResultsMatch)
	fmt.Fprintf(&b, "baseline avg causal-metadata baggage per RPC: %.0f bytes (constant-size)\n",
		r.BaselineBaggageAvg)
	return b.String()
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
