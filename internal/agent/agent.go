// Package agent implements the per-process Pivot Tracing agent (§5): it
// awaits weave/unweave instructions on the control topic, installs advice
// at the process's tracepoints, performs process-local partial aggregation
// of emitted tuples, and publishes partial query results at a configurable
// interval (one second by default).
package agent

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/advice"
	"repro/internal/baggage"
	"repro/internal/bus"
	"repro/internal/sampling"
	"repro/internal/simtime"
	"repro/internal/spans"
	"repro/internal/telemetry"
	"repro/internal/tracepoint"
	"repro/internal/tuple"
)

// Topics used on the message bus.
const (
	ControlTopic = "pt.control"
	ResultsTopic = "pt.results"
	// HealthTopic carries agent Heartbeats. It is separate from
	// ResultsTopic so health traffic never perturbs result consumers.
	HealthTopic = "pt.health"
	// StatusRequestTopic/StatusResponseTopic carry frontend status
	// queries (see core.PivotTracing.Status and cmd/ptstat).
	StatusRequestTopic  = "pt.status.req"
	StatusResponseTopic = "pt.status.resp"
	// QuarantineTopic carries Quarantine notices: an agent tripped a
	// query's circuit breaker and unwove its advice.
	QuarantineTopic = "pt.quarantine"
	// TraceTopic carries causal-trace observability frames: SpanBatch
	// (captured spans, best-effort) and ExplainStats (per-operator advice
	// counters for EXPLAIN ANALYZE). Separate from ResultsTopic so trace
	// volume never competes with query results, and dropped trace frames
	// are not retained/replayed — spans are strictly best-effort.
	TraceTopic = "pt.trace"
	// tenantResultsPrefix prefixes the per-tenant result topics a combiner
	// tree routes merged frames to (see TenantResultsTopic).
	tenantResultsPrefix = "pt.results.t."
)

// TenantResultsTopic is the per-tenant results topic: a combiner tree with
// tenant routing forwards a tenant's merged report frames here, and only
// that tenant's frontend subscribes — so per-frontend inbound traffic
// scales with the tree, not with the cluster.
func TenantResultsTopic(tenant string) string {
	return tenantResultsPrefix + tenant
}

// MetaReportTracepoint is the meta-tracepoint crossed once per report the
// agent publishes, letting Pivot Tracing queries observe Pivot Tracing's
// own reporting (e.g. From r In agent.Report GroupBy r.host Select
// r.host, SUM(r.tuples)). It is opt-in via Agent.EnableMetaTracepoint.
const MetaReportTracepoint = "agent.Report"

// MetaReportExports are the declared exports of MetaReportTracepoint.
var MetaReportExports = []string{"query", "rows", "tuples"}

// Heartbeat is the agent's periodic liveness beacon, published on
// HealthTopic at every flush (reports or not). Time is the agent's own
// clock; Interval is its reporting cadence, so the frontend can judge
// staleness relative to how often this agent should speak.
type Heartbeat struct {
	Host     string
	ProcName string
	Time     time.Duration
	Interval time.Duration
	Queries  int
	Stats    Stats
}

// StatusRequest asks the frontend for its status text (cmd/ptstat sends
// these over the bus); ID correlates the response.
type StatusRequest struct {
	ID string
}

// StatusResponse is the frontend's rendered status.
type StatusResponse struct {
	ID   string
	Text string
}

// Install instructs agents to weave a query's advice programs. Each agent
// weaves the programs whose tracepoints exist in its process.
type Install struct {
	QueryID  string
	Programs []*advice.Program
	// TTL is the query's lease duration: if the frontend stops renewing
	// (see Renew), agents auto-uninstall the query TTL after the last
	// renewal, so a crashed frontend never leaves instrumentation
	// resident. Zero means no lease (immortal), preserving direct
	// installs by tests and embedders that manage lifecycle themselves.
	TTL time.Duration
	// Limits bounds the agent-side accumulator for this query.
	Limits advice.Limits
	// Tenant names the frontend that owns this query ("" = the primary
	// frontend). Agents account per-tenant tuple usage against it, and a
	// tenant-routing combiner learns the query→tenant mapping from it.
	Tenant string
	// Share is the fair-share divisor the installing frontend applied to
	// its budgets (how many tenants split the agent's capacity); carried on
	// the wire so agents and operators can audit the split. Zero or one
	// means the full, unsplit budget.
	Share int
}

// Uninstall instructs agents to remove a query's advice.
type Uninstall struct {
	QueryID string
}

// Renew extends the lease of the listed queries. The frontend publishes
// these periodically on the control topic; TTL == 0 keeps each query's
// current lease duration.
type Renew struct {
	QueryIDs []string
	TTL      time.Duration
}

// Quarantine is published on QuarantineTopic when an agent trips a
// query's circuit breaker: the offending program is unwoven in that
// process while the rest of the query keeps running.
type Quarantine struct {
	QueryID    string
	Tracepoint string
	Host       string
	ProcName   string
	Reason     string
	Time       time.Duration
}

// DefaultLease is the lease TTL the frontend attaches to installs unless
// the query specifies its own (plan.Options.Lease).
const DefaultLease = 30 * time.Second

// ReportBatch coalesces one flush interval's Reports from one process into
// a single bus frame, cutting frames and syscalls when many queries are
// installed. Batches are split so each frame's approximate payload stays
// under the agent's batch-size cap (SetBatchBytes). Consumers treat a
// batch exactly as its constituent Reports in order.
type ReportBatch struct {
	Host     string
	ProcName string
	Time     time.Duration
	Reports  []Report
}

// DefaultBatchBytes is the default approximate size cap of one ReportBatch
// frame's payload.
const DefaultBatchBytes = 256 << 10

// SpanBatch coalesces one flush interval's captured spans from one process
// into a single TraceTopic frame, mirroring ReportBatch's size-capped
// splitting. Spans are best-effort: a dropped frame is never retained.
type SpanBatch struct {
	Host     string
	ProcName string
	Time     time.Duration
	Spans    []spans.Span
}

// OpStats is one advice program's live operator counters, snapshot at
// flush time for EXPLAIN ANALYZE. Values are cumulative since install.
type OpStats struct {
	Tracepoint     string
	Invocations    int64
	Sampled        int64
	DroppedByJoin  int64
	TuplesFiltered int64
	TuplesPacked   int64
	PackedBytes    int64
	PackRefused    int64
	EvictedGroups  int64
	EvictedTuples  int64
	EvictedBytes   int64
	TuplesEmitted  int64
	Panics         int64
}

// ExplainStats carries one query's per-operator counters from one process,
// published on TraceTopic at every flush while span capture is enabled.
// FlushNS is the wall-clock nanoseconds the agent spent draining and
// encoding this query's partial results in the flush that produced this
// snapshot — the agent-side "merge time" of EXPLAIN ANALYZE.
type ExplainStats struct {
	QueryID  string
	Host     string
	ProcName string
	Time     time.Duration
	FlushNS  int64
	Ops      []OpStats
}

// Report is one interval's partial results from one process for one query.
type Report struct {
	QueryID  string
	Host     string
	ProcName string
	Time     time.Duration
	Groups   []*advice.Group
	Raws     []tuple.Tuple
	// Drops are baggage eviction tombstones observed by this query's
	// advice since the last report: results the budget truncated. The
	// frontend unions them (tombstones are globally unique per evicted
	// group) so reported + dropped reconciles against the true total.
	Drops []baggage.DropRecord
}

// DefaultInterval is the agent reporting interval (the paper's default).
const DefaultInterval = time.Second

// DefaultRetention is the default capacity of the agent's outage ring
// buffer (reports retained per process while the bus link is down).
const DefaultRetention = 64

// Stats counts an agent's activity, used by the tuple-traffic experiments
// (Fig 6, and the §4 claim that Q2 drops from ~600 emitted tuples/s to 6
// reported tuples/s per DataNode) and by the frontend's health view. The
// resilience counters make report loss auditable: every report the agent
// ever published is either merged at the frontend, still buffered, or
// counted in ReportsDropped — nothing disappears silently.
type Stats struct {
	TuplesEmitted int64 // advice EMIT operations executed
	RowsReported  int64 // aggregated rows published to the bus
	Reports       int64 // per-query reports published
	Batches       int64 // ReportBatch frames published (coalesced reports)

	ReportsRetained int64 // reports buffered during bus outages
	ReportsReplayed int64 // buffered reports replayed after reconnect
	ReportsDropped  int64 // reports lost to ring-buffer overflow
	Reconnects      int64 // bus link reconnections observed

	// Governance counters (this PR's safety valves). Like the resilience
	// counters, every limit hit is accounted: a row, group, or byte the
	// tracer gave up is counted here, never silently lost.
	LeasesExpired        int64 // queries auto-uninstalled on lease expiry
	Quarantines          int64 // programs unwoven by the circuit breaker
	RawsDropped          int64 // raw rows FIFO-evicted by accumulator caps
	GroupsOverflowed     int64 // rows folded into accumulator overflow groups
	BaggageGroupsDropped int64 // baggage groups evicted by budgets (pack side)
	BaggageTuplesDropped int64 // baggage tuples evicted by budgets (pack side)
	BaggageBytesDropped  int64 // baggage bytes evicted by budgets (pack side)

	// Span-capture counters (zero unless EnableSpans was called).
	SpansCaptured int64 // spans recorded at tracepoint crossings
	SpansDropped  int64 // spans overwritten in the ring before shipping
	SpanBatches   int64 // SpanBatch frames published on TraceTopic

	// Combiner counters (zero for ordinary agents). A combiner tier
	// heartbeats with the same Stats shape so ptstat shows the whole
	// aggregation tree in one table: reports merged in from downstream and
	// frames forwarded upstream. Merged − forwarded traffic is the tree's
	// whole point; both sides are counted so the reduction is auditable.
	CombinerReportsMerged int64 // downstream reports folded into tier state
	CombinerFramesOut     int64 // merged frames forwarded upstream

	// Sampling counters. SampledOut counts crossings this process's advice
	// suppressed because the request's sampling decision said no — the
	// sampled-rate half of drop accounting (suppressed + reported-weight
	// reconciles against the unsampled total). SampleRateMilli is the
	// lowest adaptive effective rate across this agent's sampled queries,
	// in thousandths: 1000 means everything runs exact (no backoff, or no
	// sampled queries); 0 appears only in frames from combiner tiers,
	// which do not sample.
	SampledOut      int64
	SampleRateMilli int64
}

// TenantQuota is one tenant's resource usage at one process, as accounted
// by its agent: live queries owned by the tenant and cumulative tuples its
// queries emitted there. Published inside TenantUsage frames.
type TenantQuota struct {
	Tenant  string
	Queries int64
	Tuples  int64
}

// TenantUsage carries one process's per-tenant quota counters, published
// on HealthTopic at each flush while any tenant-owned query is installed.
// The primary frontend aggregates these into core.Status's tenants table,
// making the fair-share split observable on the wire.
type TenantUsage struct {
	Host     string
	ProcName string
	Time     time.Duration
	Usage    []TenantQuota // sorted by tenant
}

// Agent is the per-process Pivot Tracing runtime.
type Agent struct {
	env      *simtime.Env
	proc     tracepoint.ProcInfo
	reg      *tracepoint.Registry
	bus      *bus.Bus
	interval time.Duration

	mu      sync.Mutex
	queries map[string]*queryState
	// queriesView is a copy-on-write snapshot of a.queries, rebuilt under
	// a.mu on every install/uninstall. EmitTuple — the hot path, invoked
	// from every advice fire — resolves its query through this pointer with
	// a single atomic load, so concurrent fires never contend on a.mu.
	queriesView atomic.Pointer[map[string]*queryState]
	// accShards fixes the shard count of accumulators created after the
	// call; <= 0 means GOMAXPROCS at creation time. Benchmarks use 1 to
	// ablate sharding.
	accShards  atomic.Int64
	batchBytes atomic.Int64 // ReportBatch size cap; <= 0 = DefaultBatchBytes
	// reportTopic overrides the topic report batches are published on (a
	// combiner tree assigns each agent its hash partition); nil selects
	// ResultsTopic.
	reportTopic atomic.Pointer[string]
	// tenantTuples is the cumulative per-tenant tuple usage accounted at
	// flush time (cold path, under mu — the hot emit path stays untouched).
	tenantTuples map[string]int64

	tuplesEmitted atomic.Int64
	rowsReported  atomic.Int64
	reports       atomic.Int64
	batches       atomic.Int64

	retainMu  sync.Mutex
	retained  []Report // FIFO ring of reports awaiting replay
	retainCap int

	reportsRetained atomic.Int64
	reportsReplayed atomic.Int64
	reportsDropped  atomic.Int64
	reconnects      atomic.Int64

	leasesExpired        atomic.Int64
	quarantines          atomic.Int64
	baggageGroupsDropped atomic.Int64
	baggageTuplesDropped atomic.Int64
	baggageBytesDropped  atomic.Int64
	// Accumulator drop counters folded in when a query is uninstalled,
	// so Stats stays cumulative across a query's whole lifetime.
	rawsDroppedRetired      atomic.Int64
	groupsOverflowedRetired atomic.Int64

	recorder    atomic.Pointer[spans.Recorder]
	spanBatches atomic.Int64

	// Request-level sampling state. sampler holds per-query adaptive
	// effective rates; samplingView is a copy-on-write, id-sorted list of
	// the queries installed with a sampling rate, so MintSampleDecision
	// iterates (and consumes randomness) in a deterministic order.
	// pressureMark remembers the baggage-drop counter total at the last
	// flush: any growth is budget pressure and backs the rates off.
	sampler      *sampling.Controller
	samplingView atomic.Pointer[[]samplingQuery]
	sampledOut   atomic.Int64
	pressureMark atomic.Int64
	rngMu        sync.Mutex
	sampleRng    *rand.Rand

	meters atomic.Pointer[agentMeters]
	metaTP atomic.Pointer[tracepoint.Tracepoint]

	controlSub bus.Subscription
}

// samplingQuery is one entry of the agent's sampling view: a query
// installed with SampleRate > 0 and that installed (base) rate.
type samplingQuery struct {
	id   string
	rate float64
}

// agentMeters are the agent's self-telemetry instruments.
type agentMeters struct {
	reports    *telemetry.Counter
	rows       *telemetry.Counter
	tuples     *telemetry.Counter
	queries    *telemetry.Gauge
	retainedC  *telemetry.Counter
	replayedC  *telemetry.Counter
	droppedC   *telemetry.Counter
	reconnects *telemetry.Counter
	buffered   *telemetry.Gauge
	expiredC   *telemetry.Counter
	quarantC   *telemetry.Counter
	bagBytesC  *telemetry.Counter
	batchesC   *telemetry.Counter
	shardsG    *telemetry.Gauge
}

// SetTelemetry attaches self-telemetry to the agent: "agent.reports",
// "agent.rows", "agent.tuples" counters, an "agent.queries" gauge, and the
// resilience meters "agent.reports.retained", "agent.reports.replayed",
// "agent.reports.dropped", "agent.reconnects", and "agent.reports.buffered".
func (a *Agent) SetTelemetry(t *telemetry.Registry) {
	a.meters.Store(&agentMeters{
		reports:    t.Counter("agent.reports"),
		rows:       t.Counter("agent.rows"),
		tuples:     t.Counter("agent.tuples"),
		queries:    t.Gauge("agent.queries"),
		retainedC:  t.Counter("agent.reports.retained"),
		replayedC:  t.Counter("agent.reports.replayed"),
		droppedC:   t.Counter("agent.reports.dropped"),
		reconnects: t.Counter("agent.reconnects"),
		buffered:   t.Gauge("agent.reports.buffered"),
		expiredC:   t.Counter("agent.leases.expired"),
		quarantC:   t.Counter("agent.quarantines"),
		bagBytesC:  t.Counter("agent.baggage.dropped.bytes"),
		batchesC:   t.Counter("agent.batches"),
		shardsG:    t.Gauge("agent.acc.shards"),
	})
}

// EnableMetaTracepoint defines MetaReportTracepoint in this process's
// registry and arms it: every report the agent publishes then crosses the
// tracepoint (outside the agent's locks), so queries can observe the
// tracer's own reporting. Returns the tracepoint.
func (a *Agent) EnableMetaTracepoint() *tracepoint.Tracepoint {
	tp := a.reg.Define(MetaReportTracepoint, MetaReportExports...)
	a.metaTP.Store(tp)
	return tp
}

// EnableSpans turns on causal span capture in this process: a bounded
// ring Recorder (see internal/spans) is attached to the registry as the
// span sink, and every Flush drains it into SpanBatch frames on
// TraceTopic — plus per-query ExplainStats snapshots. seed must be unique
// per process (the pivot layer uses procID<<32) so minted span ids never
// collide; capacity bounds the ring (<= 0 selects DefaultSpanBuffer).
func (a *Agent) EnableSpans(seed uint64, capacity int) *spans.Recorder {
	if capacity <= 0 {
		capacity = DefaultSpanBuffer
	}
	rec := spans.NewRecorder(seed, capacity)
	a.recorder.Store(rec)
	a.reg.SetSpanSink(rec)
	return rec
}

// DefaultSpanBuffer is the default span ring capacity per process.
const DefaultSpanBuffer = 4096

type queryState struct {
	programs []*advice.Program
	// acc is created lazily on the first emitting weave or fire and then
	// never replaced (Drain steals its contents without swapping the
	// pointer), so hot-path readers load it once without locks.
	acc      atomic.Pointer[advice.ShardedAccumulator]
	woven    []weave
	wovenTPs map[string]bool
	tuples   atomic.Int64 // tuples emitted since the last flush

	limits advice.Limits
	ttl    time.Duration // lease duration; 0 = immortal
	expiry time.Duration // agent-clock deadline; 0 = immortal
	tenant string        // owning tenant frontend; "" = primary
	drops  map[baggage.DropRecord]bool
	// sampleRate is the query's installed request-sampling rate (0 =
	// exact), read from its programs at install time.
	sampleRate float64
}

type weave struct {
	tp string
	a  tracepoint.Advice
}

// New starts an agent for one process. The agent subscribes to the control
// topic immediately. With a simulation environment it begins a virtual-time
// reporting loop; with env == nil (a real, non-simulated process) reports
// are produced by explicit Flush calls or a wall-clock ticker the embedder
// runs.
func New(env *simtime.Env, proc tracepoint.ProcInfo, reg *tracepoint.Registry, b *bus.Bus, interval time.Duration) *Agent {
	if interval <= 0 {
		interval = DefaultInterval
	}
	a := &Agent{
		env: env, proc: proc, reg: reg, bus: b, interval: interval,
		queries: make(map[string]*queryState),
		sampler: sampling.NewController(),
	}
	a.rebuildViewLocked()
	a.controlSub = b.Subscribe(ControlTopic, a.onControl)
	// Weave standing queries into tracepoints defined after installation.
	reg.OnDefine(func(*tracepoint.Tracepoint) { a.reweave() })
	if env != nil {
		env.Go(a.reportLoop)
	}
	return a
}

// now returns the agent's report timestamp: virtual time under simulation,
// wall-clock time since the Unix epoch otherwise.
func (a *Agent) now() time.Duration {
	if a.env != nil {
		return a.env.Now()
	}
	return time.Duration(time.Now().UnixNano())
}

// reweave attempts to weave any installed programs whose tracepoints have
// since become defined in this process.
func (a *Agent) reweave() {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, qs := range a.queries {
		a.weaveLocked(qs)
	}
}

// Deliver injects a control message directly (used to replay standing
// queries to agents that start after installation).
func (a *Agent) Deliver(msg any) { a.onControl(msg) }

// onControl handles weave/unweave instructions.
func (a *Agent) onControl(msg any) {
	switch m := msg.(type) {
	case Install:
		a.install(m)
	case Uninstall:
		a.uninstall(m.QueryID)
	case Renew:
		a.renew(m)
	}
}

// renew extends the lease of the listed queries from the agent's own
// clock. TTL == 0 keeps each query's current lease duration; a query
// installed without a lease stays immortal unless the renewal carries an
// explicit TTL.
func (a *Agent) renew(m Renew) {
	now := a.now()
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, id := range m.QueryIDs {
		qs, ok := a.queries[id]
		if !ok {
			continue
		}
		ttl := m.TTL
		if ttl <= 0 {
			ttl = qs.ttl
		}
		if ttl <= 0 {
			continue
		}
		qs.ttl = ttl
		qs.expiry = now + ttl
	}
}

func (a *Agent) install(m Install) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.queries[m.QueryID]; ok {
		return // already installed
	}
	qs := &queryState{programs: m.Programs, wovenTPs: make(map[string]bool), limits: m.Limits, ttl: m.TTL, tenant: m.Tenant}
	if m.TTL > 0 {
		qs.expiry = a.now() + m.TTL
	}
	for _, prog := range m.Programs {
		if r := sampling.ClampRate(prog.SampleRate); r > 0 {
			qs.sampleRate = r
			break
		}
	}
	if qs.sampleRate > 0 {
		a.sampler.SetBase(m.QueryID, qs.sampleRate)
	}
	a.queries[m.QueryID] = qs
	a.weaveLocked(qs)
	a.rebuildViewLocked()
	if m := a.meters.Load(); m != nil {
		m.queries.Set(int64(len(a.queries)))
	}
}

// rebuildViewLocked republishes the copy-on-write query snapshot after a
// membership change. Caller holds a.mu (New calls it before the agent is
// shared, which is equivalent). The sampling view is rebuilt alongside,
// sorted by query id so decision minting is deterministic.
func (a *Agent) rebuildViewLocked() {
	view := make(map[string]*queryState, len(a.queries))
	var sv []samplingQuery
	for id, qs := range a.queries {
		view[id] = qs
		if qs.sampleRate > 0 {
			sv = append(sv, samplingQuery{id: id, rate: qs.sampleRate})
		}
	}
	sort.Slice(sv, func(i, j int) bool { return sv[i].id < sv[j].id })
	a.queriesView.Store(&view)
	a.samplingView.Store(&sv)
}

// SetAccumulatorShards fixes the shard count of per-query accumulators
// created after the call; n <= 0 restores the default (GOMAXPROCS at
// creation time). Existing accumulators keep their shard count. Benchmarks
// use n = 1 to ablate sharding; embedders can use it to bound per-query
// memory (each shard carries the full accumulator Limits).
func (a *Agent) SetAccumulatorShards(n int) {
	a.accShards.Store(int64(n))
}

// SetBatchBytes sets the approximate payload cap of one ReportBatch frame;
// n <= 0 restores DefaultBatchBytes. A single oversized report still ships
// (alone in its own batch) — the cap splits, it never drops.
func (a *Agent) SetBatchBytes(n int) {
	a.batchBytes.Store(int64(n))
}

// SetReportTopic redirects the agent's report batches to topic — a
// combiner tree assigns each agent its hash-partition topic here, so no
// single process subscribes to every agent's traffic. Empty restores
// ResultsTopic. Heartbeats, spans, and quarantine notices keep their own
// topics; only result frames are partitioned.
func (a *Agent) SetReportTopic(topic string) {
	if topic == "" || topic == ResultsTopic {
		a.reportTopic.Store(nil)
		return
	}
	a.reportTopic.Store(&topic)
}

// ReportTopic returns the topic report batches are currently published on.
func (a *Agent) ReportTopic() string {
	if t := a.reportTopic.Load(); t != nil {
		return *t
	}
	return ResultsTopic
}

// ensureAcc returns the query's accumulator, creating and publishing it on
// first need. The CAS makes concurrent first fires safe: the loser's empty
// accumulator is discarded before any tuple lands in it.
func (a *Agent) ensureAcc(qs *queryState, op *advice.EmitOp) *advice.ShardedAccumulator {
	if acc := qs.acc.Load(); acc != nil {
		return acc
	}
	acc := advice.NewShardedAccumulator(op, int(a.accShards.Load()))
	acc.SetLimits(qs.limits)
	if !qs.acc.CompareAndSwap(nil, acc) {
		return qs.acc.Load()
	}
	if m := a.meters.Load(); m != nil {
		m.shardsG.Set(int64(acc.Shards()))
	}
	return acc
}

// weaveLocked weaves the query's programs into every tracepoint currently
// defined in this process. Caller holds a.mu.
func (a *Agent) weaveLocked(qs *queryState) {
	for _, prog := range qs.programs {
		if qs.wovenTPs[prog.Tracepoint] {
			continue
		}
		if prog.Quarantined() {
			continue // the breaker tripped; never re-weave
		}
		if a.reg.Lookup(prog.Tracepoint) == nil {
			continue // tracepoint not (yet) present in this process
		}
		if prog.Emit != nil {
			a.ensureAcc(qs, prog.Emit)
		}
		adv := &advice.Advice{Prog: prog, Emitter: a}
		if err := a.reg.Weave(prog.Tracepoint, adv); err != nil {
			continue
		}
		qs.wovenTPs[prog.Tracepoint] = true
		qs.woven = append(qs.woven, weave{tp: prog.Tracepoint, a: adv})
	}
}

func (a *Agent) uninstall(queryID string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	qs, ok := a.queries[queryID]
	if !ok {
		return
	}
	for _, w := range qs.woven {
		a.reg.Unweave(w.tp, w.a)
	}
	if acc := qs.acc.Load(); acc != nil {
		a.rawsDroppedRetired.Add(acc.RawsDropped())
		a.groupsOverflowedRetired.Add(acc.GroupsOverflowed())
	}
	a.sampler.Remove(queryID)
	delete(a.queries, queryID)
	a.rebuildViewLocked()
	if m := a.meters.Load(); m != nil {
		m.queries.Set(int64(len(a.queries)))
	}
}

// EmitTuple implements advice.Emitter: process-local aggregation. This is
// the hot path — every advice fire that reaches EMIT lands here — so it
// takes no locks: the query resolves through the copy-on-write view and
// the tuple lands in a sharded accumulator striped across Ps.
func (a *Agent) EmitTuple(p *advice.Program, w tuple.Tuple) {
	a.tuplesEmitted.Add(1)
	if m := a.meters.Load(); m != nil {
		m.tuples.Inc()
	}
	view := a.queriesView.Load()
	if view == nil {
		return
	}
	qs, ok := (*view)[p.QueryID]
	if !ok {
		return
	}
	a.ensureAcc(qs, p.Emit).Add(w)
	qs.tuples.Add(1)
}

// EmitTupleWeighted implements advice.WeightedEmitter: EmitTuple for a
// tuple from a sampled request, carrying its inverse-rate weight into
// the accumulator so COUNT/SUM aggregate to unbiased estimates.
func (a *Agent) EmitTupleWeighted(p *advice.Program, w tuple.Tuple, weight float64) {
	a.tuplesEmitted.Add(1)
	if m := a.meters.Load(); m != nil {
		m.tuples.Inc()
	}
	view := a.queriesView.Load()
	if view == nil {
		return
	}
	qs, ok := (*view)[p.QueryID]
	if !ok {
		return
	}
	a.ensureAcc(qs, p.Emit).AddWeighted(w, weight)
	qs.tuples.Add(1)
}

// NoteSampledOut implements advice.SampleSink: a crossing was suppressed
// by the request's sampling decision.
func (a *Agent) NoteSampledOut(p *advice.Program) {
	a.sampledOut.Add(1)
}

// MintSampleDecision mints the request-level sampling decision into
// fresh baggage, once, at request creation, in the originating process.
// For every query installed here with a sampling rate, one draw against
// the query's current adaptive effective rate decides the whole request:
// the decision tuple (query, effective-rate or 0) then travels with the
// baggage through every split, join, and process transfer, so advice at
// every tracepoint on the causal path agrees. Queries are visited in id
// order with a per-agent seeded RNG, keeping simulated runs
// deterministic. With no sampled queries installed this is a single
// atomic load.
func (a *Agent) MintSampleDecision(bag *baggage.Baggage) {
	view := a.samplingView.Load()
	if view == nil || len(*view) == 0 || bag == nil {
		return
	}
	a.rngMu.Lock()
	defer a.rngMu.Unlock()
	if a.sampleRng == nil {
		// Seeded from the process identity: unique per process, stable per
		// simulated run, so scenario reports stay byte-reproducible.
		a.sampleRng = rand.New(rand.NewSource(a.proc.ProcID*0x9E3779B9 + 1))
	}
	for _, sq := range *view {
		eff := a.sampler.Effective(sq.id)
		if eff <= 0 {
			eff = sq.rate
		}
		switch {
		case eff >= 1:
			bag.PackSampleDecision(sq.id, 1)
		case a.sampleRng.Float64() < eff:
			bag.PackSampleDecision(sq.id, eff)
		default:
			bag.PackSampleDecision(sq.id, 0)
		}
	}
}

// NoteQuarantine implements advice.QuarantineNotifier: the program's
// circuit breaker tripped in this process. The agent unweaves just that
// program (the query's advice at other tracepoints keeps running),
// records the event, and publishes a pt.quarantine notice — all outside
// its locks, since the breaker fires from inside a tracepoint crossing.
func (a *Agent) NoteQuarantine(p *advice.Program, reason string) {
	var adv tracepoint.Advice
	a.mu.Lock()
	if qs, ok := a.queries[p.QueryID]; ok {
		for _, w := range qs.woven {
			if wa, ok := w.a.(*advice.Advice); ok && wa.Prog == p {
				adv = w.a
				break
			}
		}
	}
	a.mu.Unlock()
	if adv != nil {
		a.reg.Unweave(p.Tracepoint, adv)
	}
	a.quarantines.Add(1)
	if m := a.meters.Load(); m != nil {
		m.quarantC.Inc()
	}
	a.bus.Publish(QuarantineTopic, Quarantine{
		QueryID:    p.QueryID,
		Tracepoint: p.Tracepoint,
		Host:       a.proc.Host,
		ProcName:   a.proc.ProcName,
		Reason:     reason,
		Time:       a.now(),
	})
}

// NoteBaggageDrops implements advice.DropSink: advice observed baggage
// eviction tombstones for its query. Tombstones are globally unique per
// evicted group, so a dedup set per query makes the next report's Drops
// exact even when many fires see the same tombstones.
func (a *Agent) NoteBaggageDrops(p *advice.Program, recs []baggage.DropRecord) {
	a.mu.Lock()
	defer a.mu.Unlock()
	qs, ok := a.queries[p.QueryID]
	if !ok {
		return
	}
	if qs.drops == nil {
		qs.drops = make(map[baggage.DropRecord]bool)
	}
	for _, r := range recs {
		qs.drops[r] = true
	}
}

// NotePackStats implements advice.PackStatsSink: budget evictions
// performed at this process's pack sites. Each eviction happens at
// exactly one pack site, so summing across agents is exact.
func (a *Agent) NotePackStats(p *advice.Program, st baggage.PackStats) {
	a.baggageGroupsDropped.Add(st.EvictedGroups)
	a.baggageTuplesDropped.Add(st.EvictedTuples)
	a.baggageBytesDropped.Add(st.EvictedBytes)
	if m := a.meters.Load(); m != nil {
		m.bagBytesC.Add(st.EvictedBytes)
	}
}

// reportLoop publishes partial results every interval until the simulation
// ends.
func (a *Agent) reportLoop() {
	for !a.env.Done() {
		a.env.Sleep(a.interval)
		a.Flush()
	}
}

// Flush publishes the current partial results immediately (also called by
// tests and by experiment harnesses at shutdown to avoid losing the last
// interval).
func (a *Agent) Flush() {
	a.expireLeases()
	// Adaptive sampling tick: baggage drop counters growing since the last
	// flush means the request path is over budget — back sampling rates
	// off. A quiet interval walks them back toward each query's base rate.
	cur := a.baggageGroupsDropped.Load() + a.baggageTuplesDropped.Load() + a.baggageBytesDropped.Load()
	prev := a.pressureMark.Swap(cur)
	a.sampler.Tick(cur > prev)
	a.mu.Lock()
	type pending struct {
		id      string
		acc     *advice.Accumulator // drained snapshot, exclusively owned
		drops   []baggage.DropRecord
		tuples  int64
		tenant  string
		flushNS int64
	}
	var out []pending
	for id, qs := range a.queries {
		acc := qs.acc.Load()
		if (acc == nil || acc.Empty()) && len(qs.drops) == 0 {
			continue
		}
		drainStart := time.Now()
		p := pending{id: id, tuples: qs.tuples.Swap(0), tenant: qs.tenant}
		if acc != nil {
			// Drain steals the shard contents under short per-shard locks
			// and merges outside them; the result is exclusively ours, so
			// everything below — including bus publication — happens with
			// no agent lock held and no cloning (snapshot-then-encode).
			p.acc = acc.Drain()
		}
		if len(qs.drops) > 0 {
			for r := range qs.drops {
				p.drops = append(p.drops, r)
			}
			sort.Slice(p.drops, func(i, j int) bool {
				if p.drops[i].Slot != p.drops[j].Slot {
					return p.drops[i].Slot < p.drops[j].Slot
				}
				return p.drops[i].Key < p.drops[j].Key
			})
			qs.drops = nil
		}
		p.flushNS = int64(time.Since(drainStart))
		if (p.acc == nil || p.acc.Empty()) && len(p.drops) == 0 {
			// The accumulator's emptiness hint raced with an in-flight Add
			// and nothing actually drained; the tuples (if any) belong to
			// the next interval.
			qs.tuples.Add(p.tuples)
			continue
		}
		out = append(out, p)
	}
	nQueries := len(a.queries)
	// Per-tenant quota accounting happens here on the cold path: fold the
	// tuples each flush drains into the owning tenant's cumulative total,
	// then snapshot live query counts per tenant. EmitTuple never sees any
	// of this.
	for _, p := range out {
		if p.tenant == "" || p.tuples == 0 {
			continue
		}
		if a.tenantTuples == nil {
			a.tenantTuples = make(map[string]int64)
		}
		a.tenantTuples[p.tenant] += p.tuples
	}
	var usage []TenantQuota
	if len(a.tenantTuples) > 0 {
		queriesBy := make(map[string]int64)
		for _, qs := range a.queries {
			if qs.tenant != "" {
				queriesBy[qs.tenant]++
			}
		}
		usage = make([]TenantQuota, 0, len(a.tenantTuples))
		for tenant, tuples := range a.tenantTuples {
			usage = append(usage, TenantQuota{Tenant: tenant, Queries: queriesBy[tenant], Tuples: tuples})
		}
		sort.Slice(usage, func(i, j int) bool { return usage[i].Tenant < usage[j].Tenant })
	}
	a.mu.Unlock()

	// Deterministic order across queries.
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k].id < out[k-1].id; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	now := a.now()
	reports := make([]Report, 0, len(out))
	for _, p := range out {
		r := Report{
			QueryID:  p.id,
			Host:     a.proc.Host,
			ProcName: a.proc.ProcName,
			Time:     now,
			Drops:    p.drops,
		}
		if p.acc != nil {
			r.Groups = p.acc.Groups()
			r.Raws = p.acc.Raws()
		}
		rows := int64(len(r.Groups) + len(r.Raws))
		a.rowsReported.Add(rows)
		a.reports.Add(1)
		if m := a.meters.Load(); m != nil {
			m.reports.Inc()
			m.rows.Add(rows)
		}
		reports = append(reports, r)
	}
	a.publishBatches(reports)
	if rec := a.recorder.Load(); rec != nil {
		a.publishSpans(rec, now)
		flushNS := make(map[string]int64, len(out))
		for _, p := range out {
			flushNS[p.id] = p.flushNS
		}
		a.publishExplain(flushNS, now)
	}
	a.bus.Publish(HealthTopic, Heartbeat{
		Host:     a.proc.Host,
		ProcName: a.proc.ProcName,
		Time:     a.now(),
		Interval: a.interval,
		Queries:  nQueries,
		Stats:    a.Stats(),
	})
	if len(usage) > 0 {
		a.bus.Publish(HealthTopic, TenantUsage{
			Host:     a.proc.Host,
			ProcName: a.proc.ProcName,
			Time:     a.now(),
			Usage:    usage,
		})
	}
	// Cross the agent.Report meta-tracepoint last, with no agent locks
	// held: its woven advice re-enters the agent via EmitTuple, and the
	// tuples it emits belong to the next interval.
	if tp := a.metaTP.Load(); tp != nil {
		ctx := tracepoint.WithProc(baggage.NewContext(context.Background(), baggage.New()), a.proc)
		for i, p := range out {
			r := &reports[i]
			tp.Here(ctx, p.id, int64(len(r.Groups)+len(r.Raws)), p.tuples)
		}
	}
}

// publishBatches coalesces this interval's reports into ReportBatch frames
// on the agent's report topic (ResultsTopic unless SetReportTopic
// partitioned it), starting a new frame whenever adding the next report
// would push the approximate payload past the batch-size cap. A single
// report larger than the cap still ships, alone in its own frame.
func (a *Agent) publishBatches(reports []Report) {
	if len(reports) == 0 {
		return
	}
	topic := a.ReportTopic()
	limit := int(a.batchBytes.Load())
	if limit <= 0 {
		limit = DefaultBatchBytes
	}
	batch := reports[:0:0]
	size := 0
	flush := func() {
		if len(batch) == 0 {
			return
		}
		a.batches.Add(1)
		if m := a.meters.Load(); m != nil {
			m.batchesC.Inc()
		}
		a.bus.Publish(topic, ReportBatch{
			Host:     a.proc.Host,
			ProcName: a.proc.ProcName,
			Time:     a.now(),
			Reports:  batch,
		})
		batch, size = nil, 0
	}
	for i := range reports {
		sz := reportSize(&reports[i])
		if len(batch) > 0 && size+sz > limit {
			flush()
		}
		batch = append(batch, reports[i])
		size += sz
	}
	flush()
}

// publishSpans drains the span ring into size-capped SpanBatch frames on
// TraceTopic, reusing the ReportBatch splitting discipline.
func (a *Agent) publishSpans(rec *spans.Recorder, now time.Duration) {
	drained := rec.Drain()
	if len(drained) == 0 {
		return
	}
	limit := int(a.batchBytes.Load())
	if limit <= 0 {
		limit = DefaultBatchBytes
	}
	batch := drained[:0:0]
	size := 0
	flush := func() {
		if len(batch) == 0 {
			return
		}
		a.spanBatches.Add(1)
		a.bus.Publish(TraceTopic, SpanBatch{
			Host:     a.proc.Host,
			ProcName: a.proc.ProcName,
			Time:     now,
			Spans:    batch,
		})
		batch, size = nil, 0
	}
	for i := range drained {
		sz := spanSize(&drained[i])
		if len(batch) > 0 && size+sz > limit {
			flush()
		}
		batch = append(batch, drained[i])
		size += sz
	}
	flush()
}

// spanSize approximates one span's encoded payload size (same arithmetic
// size model as reportSize; framing varints are deliberately undercounted).
func spanSize(sp *spans.Span) int {
	return len(sp.Tracepoint) + len(sp.Host) + len(sp.ProcName) + 8*len(sp.Parents) + 36
}

// publishExplain snapshots every installed query's per-operator advice
// counters into ExplainStats frames on TraceTopic. flushNS carries the
// per-query drain time measured in the surrounding Flush (zero for queries
// that had nothing to drain this interval).
func (a *Agent) publishExplain(flushNS map[string]int64, now time.Duration) {
	type snap struct {
		id    string
		progs []*advice.Program
	}
	a.mu.Lock()
	qsnaps := make([]snap, 0, len(a.queries))
	for id, qs := range a.queries {
		qsnaps = append(qsnaps, snap{id: id, progs: qs.programs})
	}
	a.mu.Unlock()
	sort.Slice(qsnaps, func(i, j int) bool { return qsnaps[i].id < qsnaps[j].id })
	for _, q := range qsnaps {
		es := ExplainStats{
			QueryID:  q.id,
			Host:     a.proc.Host,
			ProcName: a.proc.ProcName,
			Time:     now,
			FlushNS:  flushNS[q.id],
		}
		for _, prog := range q.progs {
			if a.reg.Lookup(prog.Tracepoint) == nil {
				continue // tracepoint not present in this process
			}
			c := &prog.Cost
			es.Ops = append(es.Ops, OpStats{
				Tracepoint:     prog.Tracepoint,
				Invocations:    c.Invocations.Load(),
				Sampled:        c.Sampled.Load(),
				DroppedByJoin:  c.DroppedByJoin.Load(),
				TuplesFiltered: c.TuplesFiltered.Load(),
				TuplesPacked:   c.TuplesPacked.Load(),
				PackedBytes:    c.PackedBytes.Load(),
				PackRefused:    c.PackRefused.Load(),
				EvictedGroups:  c.PackEvictedGroups.Load(),
				EvictedTuples:  c.PackEvictedTuples.Load(),
				EvictedBytes:   c.PackEvictedBytes.Load(),
				TuplesEmitted:  c.TuplesEmitted.Load(),
				Panics:         c.Panics.Load(),
			})
		}
		if len(es.Ops) == 0 {
			continue
		}
		a.bus.Publish(TraceTopic, es)
	}
}

// ReportSize approximates one report's encoded payload size with the
// arithmetic size model — the same figure publishBatches splits on.
// Combiner tiers reuse it so their upstream frames honor the identical
// batch-size discipline.
func ReportSize(r *Report) int { return reportSize(r) }

// reportSize approximates the report's encoded payload size using the
// arithmetic size model (tuple.SizeTuple, agg.State.EncodedSize) — no
// scratch encodings. It deliberately undercounts small framing varints;
// the batch cap is approximate by contract.
func reportSize(r *Report) int {
	n := len(r.QueryID) + len(r.Host) + len(r.ProcName) + 16
	for _, g := range r.Groups {
		n += len(g.Key) + tuple.SizeTuple(g.Rep)
		for _, st := range g.States {
			n += st.EncodedSize()
		}
	}
	for _, t := range r.Raws {
		n += tuple.SizeTuple(t)
	}
	for _, d := range r.Drops {
		n += len(d.Slot) + len(d.Key) + 4
	}
	return n
}

// expireLeases uninstalls every query whose lease has lapsed. Called from
// Flush, so orphaned queries disappear within one reporting interval of
// their deadline.
func (a *Agent) expireLeases() {
	now := a.now()
	a.mu.Lock()
	var expired []string
	for id, qs := range a.queries {
		if qs.expiry > 0 && now >= qs.expiry {
			expired = append(expired, id)
		}
	}
	a.mu.Unlock()
	sort.Strings(expired)
	for _, id := range expired {
		a.uninstall(id)
		a.leasesExpired.Add(1)
		if m := a.meters.Load(); m != nil {
			m.expiredC.Inc()
		}
	}
}

// LeaseDeadline returns the query's lease expiry on the agent's clock, or
// 0 if the query is not installed or has no lease.
func (a *Agent) LeaseDeadline(queryID string) time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	if qs, ok := a.queries[queryID]; ok {
		return qs.expiry
	}
	return 0
}

// Installed reports whether the query is currently installed.
func (a *Agent) Installed(queryID string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	_, ok := a.queries[queryID]
	return ok
}

// CostReport renders the live per-tracepoint cost counters of every query
// installed in this process (the distributed complement of the frontend's
// Installed.CostReport, whose counters only cover advice woven from the
// same process).
func (a *Agent) CostReport() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	ids := make([]string, 0, len(a.queries))
	for id := range a.queries {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var b strings.Builder
	for _, id := range ids {
		fmt.Fprintf(&b, "cost of %s in %s/%s:\n", id, a.proc.Host, a.proc.ProcName)
		fmt.Fprintf(&b, "  %-36s %12s %9s %9s %9s %9s\n",
			"tracepoint", "invocations", "sampled", "dropped", "packed", "emitted")
		for _, prog := range a.queries[id].programs {
			if a.reg.Lookup(prog.Tracepoint) == nil {
				continue
			}
			c := &prog.Cost
			fmt.Fprintf(&b, "  %-36s %12d %9d %9d %9d %9d\n",
				prog.Tracepoint,
				c.Invocations.Load(), c.Sampled.Load(), c.DroppedByJoin.Load(),
				c.TuplesPacked.Load(), c.TuplesEmitted.Load())
		}
	}
	return b.String()
}

// SetRetention sets the capacity of the agent's outage ring buffer: how
// many reports are retained for replay while the bus link is down. When
// the buffer is full the oldest report is evicted and counted as dropped.
// capacity <= 0 selects DefaultRetention.
func (a *Agent) SetRetention(capacity int) {
	if capacity <= 0 {
		capacity = DefaultRetention
	}
	a.retainMu.Lock()
	a.retainCap = capacity
	a.retainMu.Unlock()
}

// Retain buffers a report that failed to reach the bus server (the link's
// OnDrop path), evicting the oldest buffered report — counted in
// ReportsDropped — if the ring is full.
func (a *Agent) Retain(r Report) {
	m := a.meters.Load()
	a.retainMu.Lock()
	limit := a.retainCap
	if limit <= 0 {
		limit = DefaultRetention
	}
	evicted := 0
	for len(a.retained) >= limit {
		a.retained = append(a.retained[:0], a.retained[1:]...)
		evicted++
	}
	a.retained = append(a.retained, r)
	buffered := len(a.retained)
	a.retainMu.Unlock()

	a.reportsRetained.Add(1)
	a.reportsDropped.Add(int64(evicted))
	if m != nil {
		m.retainedC.Inc()
		m.droppedC.Add(int64(evicted))
		m.buffered.Set(int64(buffered))
	}
}

// ReplayRetained drains the outage buffer in FIFO order through send,
// stopping at the first failure (the failed report stays buffered, at the
// front). It returns how many reports were replayed. Typically called
// from a link's OnUp callback with the link's direct Send.
func (a *Agent) ReplayRetained(send func(Report) error) int {
	m := a.meters.Load()
	replayed := 0
	for {
		a.retainMu.Lock()
		if len(a.retained) == 0 {
			a.retainMu.Unlock()
			break
		}
		r := a.retained[0]
		a.retained = a.retained[1:]
		buffered := len(a.retained)
		a.retainMu.Unlock()

		if err := send(r); err != nil {
			// Put the failed report back at the front; it is still the
			// oldest unreplayed one.
			a.retainMu.Lock()
			a.retained = append([]Report{r}, a.retained...)
			a.retainMu.Unlock()
			break
		}
		replayed++
		a.reportsReplayed.Add(1)
		if m != nil {
			m.replayedC.Inc()
			m.buffered.Set(int64(buffered))
		}
	}
	return replayed
}

// Buffered returns the number of reports currently awaiting replay.
func (a *Agent) Buffered() int {
	a.retainMu.Lock()
	defer a.retainMu.Unlock()
	return len(a.retained)
}

// NoteReconnect records a bus-link reconnection in the agent's stats (the
// pivot layer wires this to the link's OnUp callback so heartbeats carry
// the count).
func (a *Agent) NoteReconnect() {
	a.reconnects.Add(1)
	if m := a.meters.Load(); m != nil {
		m.reconnects.Inc()
	}
}

// Stats returns the agent's activity counters.
func (a *Agent) Stats() Stats {
	rawsDropped := a.rawsDroppedRetired.Load()
	groupsOverflowed := a.groupsOverflowedRetired.Load()
	a.mu.Lock()
	for _, qs := range a.queries {
		if acc := qs.acc.Load(); acc != nil {
			rawsDropped += acc.RawsDropped()
			groupsOverflowed += acc.GroupsOverflowed()
		}
	}
	a.mu.Unlock()
	s := Stats{
		TuplesEmitted:        a.tuplesEmitted.Load(),
		RowsReported:         a.rowsReported.Load(),
		Reports:              a.reports.Load(),
		Batches:              a.batches.Load(),
		ReportsRetained:      a.reportsRetained.Load(),
		ReportsReplayed:      a.reportsReplayed.Load(),
		ReportsDropped:       a.reportsDropped.Load(),
		Reconnects:           a.reconnects.Load(),
		LeasesExpired:        a.leasesExpired.Load(),
		Quarantines:          a.quarantines.Load(),
		RawsDropped:          rawsDropped,
		GroupsOverflowed:     groupsOverflowed,
		BaggageGroupsDropped: a.baggageGroupsDropped.Load(),
		BaggageTuplesDropped: a.baggageTuplesDropped.Load(),
		BaggageBytesDropped:  a.baggageBytesDropped.Load(),
		SpanBatches:          a.spanBatches.Load(),
		SampledOut:           a.sampledOut.Load(),
		SampleRateMilli:      a.sampler.MinEffectiveMilli(),
	}
	if rec := a.recorder.Load(); rec != nil {
		s.SpansCaptured = rec.Captured()
		s.SpansDropped = rec.Dropped()
	}
	return s
}

// Close unsubscribes the agent from the control topic and unweaves all
// advice.
func (a *Agent) Close() {
	a.bus.Unsubscribe(a.controlSub)
	a.mu.Lock()
	ids := make([]string, 0, len(a.queries))
	for id := range a.queries {
		ids = append(ids, id)
	}
	a.mu.Unlock()
	for _, id := range ids {
		a.uninstall(id)
	}
}
