package baggage

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/randtest"
	"repro/internal/tuple"
)

// baggageSeeds serializes baggage exercising every set kind, frozen
// instances from split/join, and budget-eviction tombstones, plus
// malformed shapes the decoder must reject without panicking or
// preallocating for absurd claimed counts.
func baggageSeeds(t testing.TB) map[string][]byte {
	kv := func(k string, v int64) tuple.Tuple {
		return tuple.Tuple{tuple.String(k), tuple.Int(v)}
	}
	allKinds := New()
	for _, k := range []struct {
		slot string
		spec SetSpec
	}{
		{"q.all", SetSpec{Kind: All, Fields: tuple.Schema{"k", "v"}}},
		{"q.first", SetSpec{Kind: First, Fields: tuple.Schema{"k", "v"}}},
		{"q.firstn", SetSpec{Kind: FirstN, N: 2, Fields: tuple.Schema{"k", "v"}}},
		{"q.recent", SetSpec{Kind: Recent, Fields: tuple.Schema{"k", "v"}}},
		{"q.recentn", SetSpec{Kind: RecentN, N: 2, Fields: tuple.Schema{"k", "v"}}},
		{"q.frontier", SetSpec{Kind: Frontier, Fields: tuple.Schema{"k", "v"}}},
		{"q.union", SetSpec{Kind: Union, Fields: tuple.Schema{"k", "v"}}},
		{"q.agg", aggSpec()},
	} {
		allKinds.Pack(k.slot, k.spec, kv("a", 1), kv("b", 2), kv("a", 3))
	}

	split := New()
	split.Pack("q.agg", aggSpec(), kv("pre", 1))
	left, right := split.Split()
	left.Pack("q.agg", aggSpec(), kv("l", 1))
	right.Pack("q.agg", aggSpec(), kv("r", 1))
	joined := Join(left, right)

	evicted := New()
	for i := 0; i < 8; i++ {
		evicted.PackBudgeted("q.a", aggSpec(), Budget{MaxTuples: 2}, kv(string(rune('a'+i)), int64(i)))
	}

	return map[string][]byte{
		"all-kinds": allKinds.Serialize(),
		"joined":    joined.Serialize(),
		"tombstone": evicted.Serialize(),
		"empty":     {},
		"bad-tag":   {0x7f},
		// One instance claiming 2^28 slots in a one-byte body.
		"huge-count": {0x01, 0x01, 0x00, 0xff, 0xff, 0xff, 0x7f},
		"truncated":  allKinds.Serialize()[:9],
	}
}

// encodeAll re-encodes decoded instances the way Serialize does once the
// lazy raw bytes are invalidated.
func encodeAll(insts []*instance) []byte {
	if len(insts) == 0 {
		return nil
	}
	out := binary.AppendUvarint(nil, uint64(len(insts)))
	for _, in := range insts {
		out = encodeInstance(out, in)
	}
	return out
}

// FuzzDecodeBaggage: decoding arbitrary bytes must never panic, and any
// successfully decoded baggage must re-encode to a stable canonical form
// (encode ∘ decode is a fixpoint). Decoded content must also survive the
// exported surface — Unpack, budget accounting, split/join — without
// panicking, since baggage bytes arrive from untrusted peer processes.
func FuzzDecodeBaggage(f *testing.F) {
	for _, s := range baggageSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		insts, err := decodeInstances(data)
		if err != nil {
			return
		}
		enc := encodeAll(insts)
		insts2, err := decodeInstances(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded baggage: %v", err)
		}
		if enc2 := encodeAll(insts2); !bytes.Equal(enc, enc2) {
			t.Fatalf("baggage encoding is not a fixpoint:\n%x\n%x", enc, enc2)
		}

		// The exported read paths must tolerate whatever decoded.
		bag := Deserialize(data)
		for _, slot := range bag.Slots() {
			bag.Unpack(slot)
		}
		bag.TupleCount()
		bag.HasDrops()
		bag.DropRecords("")
		a, b := bag.Split()
		Join(a, b).Serialize()
	})
}

func TestRegenBaggageFuzzCorpus(t *testing.T) {
	randtest.RegenCorpus(t, "FuzzDecodeBaggage", baggageSeeds(t))
}
