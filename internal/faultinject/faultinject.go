// Package faultinject is a deterministic, seedable fault-injection layer
// for the tracer's report plane. It wraps net.Conn / net.Listener pairs so
// tests can drop, delay, truncate, and sever connections on a fixed
// schedule, and (see netsim.go) drives scheduled capacity faults into the
// netsim flow simulator. Everything is driven by explicit operation counts
// and a seeded RNG, so a chaos test with a fixed seed replays the exact
// same fault sequence on every run — including under -race -count=N.
//
// The injector is shared state: one Injector configures a whole test's
// faults, wraps every connection it should afflict (directly via Wrap, or
// transparently via Dialer/Listener), and counts what it did (cuts,
// blackholed writes, failed dials) so tests can assert exact accounting.
package faultinject

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjected is the error surfaced by operations the injector kills.
var ErrInjected = errors.New("faultinject: injected fault")

// Faults is a declarative fault schedule, applied per wrapped connection.
// Zero values disable each fault.
type Faults struct {
	// Seed fixes the RNG driving probabilistic faults. The same seed and
	// the same operation sequence produce the same faults.
	Seed int64

	// ReadDelay/WriteDelay pause before every corresponding operation.
	ReadDelay  time.Duration
	WriteDelay time.Duration

	// CutAfterWrites severs a connection when it performs its Nth write;
	// CutAfterReads likewise for reads. The cut closes the underlying
	// connection, so the peer observes EOF or a reset.
	CutAfterWrites int
	CutAfterReads  int

	// TruncateFinalWrite lets the first TruncateFinalWrite bytes of the
	// cutting write through before severing, leaving a truncated frame on
	// the peer's wire (only meaningful with CutAfterWrites).
	TruncateFinalWrite int

	// FailDials makes the next N dials through Dialer fail outright.
	FailDials int

	// DropWriteProb silently blackholes each write with this probability:
	// the writer sees success, the peer sees nothing.
	DropWriteProb float64
}

// Injector applies one Faults schedule to the connections it wraps.
type Injector struct {
	mu    sync.Mutex
	f     Faults
	rng   *rand.Rand
	conns map[*Conn]struct{}

	cuts          int64
	dials         int64
	failedDials   int64
	droppedWrites int64
}

// New returns an injector applying the given fault schedule.
func New(f Faults) *Injector {
	return &Injector{
		f:     f,
		rng:   rand.New(rand.NewSource(f.Seed)),
		conns: make(map[*Conn]struct{}),
	}
}

// SetFaults replaces the fault schedule for subsequently wrapped
// connections and future operations on existing ones. Per-connection
// operation counts are not reset.
func (in *Injector) SetFaults(f Faults) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.f = f
}

// faults returns the current schedule.
func (in *Injector) faults() Faults {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.f
}

// chance draws a seeded Bernoulli sample.
func (in *Injector) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Float64() < p
}

// Wrap returns c instrumented with the injector's fault schedule.
func (in *Injector) Wrap(c net.Conn) *Conn {
	fc := &Conn{Conn: c, in: in}
	in.mu.Lock()
	in.conns[fc] = struct{}{}
	in.mu.Unlock()
	return fc
}

// Dialer wraps a dial function so dial-failure faults apply and successful
// dials return wrapped connections. A nil dial uses net.Dial("tcp", addr).
func (in *Injector) Dialer(dial func(addr string) (net.Conn, error)) func(addr string) (net.Conn, error) {
	if dial == nil {
		dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	return func(addr string) (net.Conn, error) {
		in.mu.Lock()
		in.dials++
		fail := in.f.FailDials > 0
		if fail {
			in.f.FailDials--
			in.failedDials++
		}
		in.mu.Unlock()
		if fail {
			return nil, ErrInjected
		}
		c, err := dial(addr)
		if err != nil {
			return nil, err
		}
		return in.Wrap(c), nil
	}
}

// Listener wraps ln so accepted connections carry the fault schedule.
func (in *Injector) Listener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, in: in}
}

type listener struct {
	net.Listener
	in *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.Wrap(c), nil
}

// CutAll severs every live wrapped connection immediately (a bus outage)
// and reports how many it cut.
func (in *Injector) CutAll() int {
	in.mu.Lock()
	conns := make([]*Conn, 0, len(in.conns))
	for c := range in.conns {
		conns = append(conns, c)
	}
	in.mu.Unlock()
	n := 0
	for _, c := range conns {
		if c.sever() {
			n++
		}
	}
	return n
}

// Cuts returns the number of connections the injector has severed.
func (in *Injector) Cuts() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.cuts
}

// Dials returns total and failed dial counts through Dialer.
func (in *Injector) Dials() (total, failed int64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.dials, in.failedDials
}

// DroppedWrites returns the number of writes silently blackholed.
func (in *Injector) DroppedWrites() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.droppedWrites
}

// forget drops a severed connection from the live set.
func (in *Injector) forget(c *Conn) {
	in.mu.Lock()
	delete(in.conns, c)
	in.cuts++
	in.mu.Unlock()
}

// Conn is a net.Conn with faults applied to its reads and writes.
type Conn struct {
	net.Conn
	in *Injector

	mu     sync.Mutex
	reads  int
	writes int
	cut    bool
}

// sever closes the underlying connection and marks the wrapper dead.
// Reports whether this call performed the cut.
func (c *Conn) sever() bool {
	c.mu.Lock()
	if c.cut {
		c.mu.Unlock()
		return false
	}
	c.cut = true
	c.mu.Unlock()
	c.Conn.Close()
	c.in.forget(c)
	return true
}

// Close closes the underlying connection (an orderly close, not a cut).
func (c *Conn) Close() error {
	c.mu.Lock()
	already := c.cut
	c.cut = true
	c.mu.Unlock()
	if !already {
		c.in.mu.Lock()
		delete(c.in.conns, c)
		c.in.mu.Unlock()
	}
	return c.Conn.Close()
}

func (c *Conn) Read(p []byte) (int, error) {
	f := c.in.faults()
	if f.ReadDelay > 0 {
		time.Sleep(f.ReadDelay)
	}
	c.mu.Lock()
	if c.cut {
		c.mu.Unlock()
		return 0, ErrInjected
	}
	c.reads++
	cutNow := f.CutAfterReads > 0 && c.reads >= f.CutAfterReads
	c.mu.Unlock()
	if cutNow {
		c.sever()
		return 0, ErrInjected
	}
	return c.Conn.Read(p)
}

func (c *Conn) Write(p []byte) (int, error) {
	f := c.in.faults()
	if f.WriteDelay > 0 {
		time.Sleep(f.WriteDelay)
	}
	c.mu.Lock()
	if c.cut {
		c.mu.Unlock()
		return 0, ErrInjected
	}
	c.writes++
	cutNow := f.CutAfterWrites > 0 && c.writes >= f.CutAfterWrites
	c.mu.Unlock()
	if cutNow {
		// Leak a truncated prefix onto the wire, then sever mid-frame.
		if n := f.TruncateFinalWrite; n > 0 && n < len(p) {
			c.Conn.Write(p[:n])
		}
		c.sever()
		return 0, ErrInjected
	}
	if c.in.chance(f.DropWriteProb) {
		c.in.mu.Lock()
		c.in.droppedWrites++
		c.in.mu.Unlock()
		return len(p), nil // blackhole: writer believes it succeeded
	}
	return c.Conn.Write(p)
}
