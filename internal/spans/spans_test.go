package spans

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/baggage"
	"repro/internal/tracepoint"
)

// fakeClock is a settable virtual clock for deterministic span timings.
type fakeClock struct {
	mu  sync.Mutex
	now time.Duration
}

func (c *fakeClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

// env builds a context carrying baggage, proc identity and a virtual clock.
func env(t *testing.T, proc string) (context.Context, *baggage.Baggage, *fakeClock) {
	t.Helper()
	clk := &fakeClock{}
	bag := baggage.New()
	ctx := baggage.NewContext(context.Background(), bag)
	ctx = tracepoint.WithProc(ctx, tracepoint.ProcInfo{Host: "h-" + proc, ProcName: proc, ProcID: 1})
	ctx = tracepoint.WithClock(ctx, clk)
	return ctx, bag, clk
}

func TestRecorderBuildsCausalChain(t *testing.T) {
	r := NewRecorder(1<<32, 16)
	ctx, _, clk := env(t, "client")
	r.TracepointCrossed(ctx, "a")
	clk.advance(10 * time.Millisecond)
	r.TracepointCrossed(ctx, "b")
	clk.advance(5 * time.Millisecond)
	r.TracepointCrossed(ctx, "c")

	got := r.Drain()
	if len(got) != 3 {
		t.Fatalf("drained %d spans, want 3", len(got))
	}
	a, bsp, c := got[0], got[1], got[2]
	if a.TraceID != a.SpanID {
		t.Errorf("root span must name the trace: trace %x, span %x", a.TraceID, a.SpanID)
	}
	if len(a.Parents) != 0 || a.Duration != 0 {
		t.Errorf("root span parents=%v dur=%v, want none/0", a.Parents, a.Duration)
	}
	if bsp.TraceID != a.TraceID || c.TraceID != a.TraceID {
		t.Errorf("trace id not propagated: %x %x %x", a.TraceID, bsp.TraceID, c.TraceID)
	}
	if len(bsp.Parents) != 1 || bsp.Parents[0] != a.SpanID {
		t.Errorf("b parents = %x, want [%x]", bsp.Parents, a.SpanID)
	}
	if bsp.Duration != 10*time.Millisecond {
		t.Errorf("b duration = %v, want 10ms", bsp.Duration)
	}
	if len(c.Parents) != 1 || c.Parents[0] != bsp.SpanID {
		t.Errorf("c parents = %x, want [%x]", c.Parents, bsp.SpanID)
	}
	if c.Duration != 5*time.Millisecond {
		t.Errorf("c duration = %v, want 5ms", c.Duration)
	}
	if r.Captured() != 3 || r.Dropped() != 0 {
		t.Errorf("captured=%d dropped=%d, want 3/0", r.Captured(), r.Dropped())
	}
}

func TestRecorderSkipsBaggagelessCrossings(t *testing.T) {
	r := NewRecorder(1, 4)
	r.TracepointCrossed(context.Background(), "a")
	if got := r.Drain(); len(got) != 0 {
		t.Fatalf("baggage-less crossing recorded %d spans, want 0", len(got))
	}
}

func TestRecorderRingOverflowCountsDrops(t *testing.T) {
	r := NewRecorder(7, 2)
	ctx, _, clk := env(t, "p")
	for i := 0; i < 5; i++ {
		r.TracepointCrossed(ctx, "tp")
		clk.advance(time.Millisecond)
	}
	got := r.Drain()
	if len(got) != 2 {
		t.Fatalf("ring of 2 drained %d spans", len(got))
	}
	// The survivors are the two most recent, in arrival order.
	if got[0].Start != 3*time.Millisecond || got[1].Start != 4*time.Millisecond {
		t.Errorf("survivors start at %v, %v; want 3ms, 4ms", got[0].Start, got[1].Start)
	}
	if r.Captured() != 5 || r.Dropped() != 3 {
		t.Errorf("captured=%d dropped=%d, want 5/3", r.Captured(), r.Dropped())
	}
}

func TestRecorderSplitJoinProducesDAG(t *testing.T) {
	r := NewRecorder(9, 16)
	ctx, bag, clk := env(t, "root")
	r.TracepointCrossed(ctx, "start")

	left, right := bag.Split()
	lctx := tracepoint.WithClock(tracepoint.WithProc(baggage.NewContext(context.Background(), left),
		tracepoint.ProcInfo{Host: "h1", ProcName: "left", ProcID: 1}), clk)
	rctx := tracepoint.WithClock(tracepoint.WithProc(baggage.NewContext(context.Background(), right),
		tracepoint.ProcInfo{Host: "h2", ProcName: "right", ProcID: 1}), clk)
	clk.advance(time.Millisecond)
	r.TracepointCrossed(lctx, "branch.l")
	clk.advance(time.Millisecond)
	r.TracepointCrossed(rctx, "branch.r")

	joined := baggage.Join(left, right)
	jctx := tracepoint.WithClock(tracepoint.WithProc(baggage.NewContext(context.Background(), joined),
		tracepoint.ProcInfo{Host: "h0", ProcName: "root", ProcID: 1}), clk)
	clk.advance(time.Millisecond)
	r.TracepointCrossed(jctx, "end")

	spans := r.Drain()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	b := NewBuilder()
	b.AddBatch(spans)
	tr := b.Trace(spans[0].TraceID)
	if tr == nil {
		t.Fatal("trace not found")
	}
	if tr.Synthetic {
		t.Fatal("complete trace must not need a synthetic root")
	}
	end := tr.Nodes[len(tr.Nodes)-1]
	if end.Tracepoint != "end" {
		t.Fatalf("last node = %q, want end", end.Tracepoint)
	}
	// The join sees both branches as parents — and only the branches:
	// the pre-split frontier (start) must be transitively reduced away.
	if len(end.Parents) != 2 {
		t.Fatalf("join node has %d parents (%v), want 2", len(end.Parents), end.Span.Parents)
	}
	for _, p := range end.Parents {
		if !strings.HasPrefix(p.Tracepoint, "branch.") {
			t.Errorf("join parent %q, want a branch span", p.Tracepoint)
		}
	}
	if tr.Root.Tracepoint != "start" || len(tr.Root.Children) != 2 {
		t.Errorf("root %q with %d children, want start with 2", tr.Root.Tracepoint, len(tr.Root.Children))
	}
}

// handSpan builds a span for builder-level tests.
func handSpan(trace, id uint64, parents []uint64, tp, proc string, start, dur time.Duration) Span {
	return Span{TraceID: trace, SpanID: id, Parents: parents, Tracepoint: tp,
		Host: "h-" + proc, ProcName: proc, Start: start, Duration: dur}
}

func diamond() []Span {
	return []Span{
		handSpan(1, 10, nil, "a", "fe", 0, 0),
		handSpan(1, 20, []uint64{10}, "b", "mid", 1*time.Millisecond, 1*time.Millisecond),
		handSpan(1, 30, []uint64{10}, "c", "mid", 2*time.Millisecond, 2*time.Millisecond),
		// The join's frontier also carries the pre-split ancestor 10.
		handSpan(1, 40, []uint64{20, 30, 10}, "d", "be", 5*time.Millisecond, 3*time.Millisecond),
	}
}

func TestBuilderOutOfOrderArrival(t *testing.T) {
	want := NewBuilder()
	want.AddBatch(diamond())
	ref := want.Trace(1).RenderTree()

	got := NewBuilder()
	ds := diamond()
	for i := len(ds) - 1; i >= 0; i-- { // reversed arrival
		got.Add(ds[i])
	}
	if tree := got.Trace(1).RenderTree(); tree != ref {
		t.Errorf("out-of-order reconstruction differs:\n%s\nvs\n%s", tree, ref)
	}
}

func TestBuilderDuplicateReplayIdempotent(t *testing.T) {
	b := NewBuilder()
	b.AddBatch(diamond())
	ref := b.Trace(1).RenderTree()
	b.AddBatch(diamond()) // retention replay re-delivers the batch
	tr := b.Trace(1)
	if len(tr.Nodes) != 4 {
		t.Fatalf("replay grew the trace to %d nodes", len(tr.Nodes))
	}
	if tree := tr.RenderTree(); tree != ref {
		t.Errorf("replayed reconstruction differs:\n%s\nvs\n%s", tree, ref)
	}
}

func TestBuilderTransitiveReduction(t *testing.T) {
	b := NewBuilder()
	b.AddBatch(diamond())
	tr := b.Trace(1)
	var d *Node
	for _, n := range tr.Nodes {
		if n.SpanID == 40 {
			d = n
		}
	}
	if d == nil {
		t.Fatal("join node missing")
	}
	if len(d.Parents) != 2 {
		t.Fatalf("join parents = %d, want 2 (ancestor edge 10 reduced)", len(d.Parents))
	}
	for _, p := range d.Parents {
		if p.SpanID == 10 {
			t.Error("transitive edge to 10 survived reduction")
		}
	}
}

func TestBuilderOrphanAdoption(t *testing.T) {
	b := NewBuilder()
	for _, sp := range diamond() {
		if sp.SpanID == 10 {
			continue // root span lost in transit
		}
		b.Add(sp)
	}
	tr := b.Trace(1)
	if !tr.Synthetic {
		t.Fatal("lost root must force a synthetic root")
	}
	if tr.Orphans != 2 {
		t.Errorf("orphans = %d, want 2 (b and c)", tr.Orphans)
	}
	if len(tr.Nodes) != 3 {
		t.Errorf("nodes = %d, want 3", len(tr.Nodes))
	}
	// d still hangs off b and c; nothing is dropped from the rendering.
	tree := tr.RenderTree()
	for _, tp := range []string{"b", "c", "d"} {
		if !strings.Contains(tree, tp) {
			t.Errorf("render lost span %q:\n%s", tp, tree)
		}
	}
}

func TestCriticalPathAndTierLatency(t *testing.T) {
	b := NewBuilder()
	b.AddBatch(diamond())
	tr := b.Trace(1)
	cp := tr.CriticalPath()
	var names []string
	for _, n := range cp {
		names = append(names, n.Tracepoint)
	}
	// d finishes last; its latest-finishing parent is c; then a.
	if got := strings.Join(names, ">"); got != "a>c>d" {
		t.Errorf("critical path = %s, want a>c>d", got)
	}
	tiers := tr.TierLatency()
	if tiers["mid"] != 2*time.Millisecond || tiers["be"] != 3*time.Millisecond {
		t.Errorf("tier latency = %v, want mid=2ms be=3ms", tiers)
	}
	if tr.Latency() != 5*time.Millisecond {
		t.Errorf("latency = %v, want 5ms", tr.Latency())
	}
}

func TestSummaryRendersEveryTrace(t *testing.T) {
	b := NewBuilder()
	b.AddBatch(diamond())
	b.Add(handSpan(2, 50, nil, "solo", "fe", 0, 0))
	s := b.Summary()
	for _, want := range []string{"0000000000000001", "0000000000000002", "TRACE", "SPANS"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestMixIsInjectiveOverSmallRange(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 10000; i++ {
		id := mix(i)
		if seen[id] {
			t.Fatalf("collision at %d", i)
		}
		seen[id] = true
	}
}

// TestBuilderDuplicateBatchFirstCopyWins: a replayed batch whose spans
// carry different field values (a buggy or racing reporter) must not
// overwrite the copies already stored.
func TestBuilderDuplicateBatchFirstCopyWins(t *testing.T) {
	b := NewBuilder()
	b.AddBatch(diamond())
	forged := diamond()
	for i := range forged {
		forged[i].Tracepoint = "forged"
		forged[i].Start += time.Hour
	}
	// The forged replay also smuggles in one genuinely new span.
	forged = append(forged, Span{TraceID: 1, SpanID: 50, Parents: []uint64{40},
		Tracepoint: "e", Start: 5 * time.Millisecond})
	b.AddBatch(forged)

	tr := b.Trace(1)
	if len(tr.Nodes) != 5 {
		t.Fatalf("nodes = %d, want 5 (4 originals + 1 new)", len(tr.Nodes))
	}
	for _, n := range tr.Nodes {
		if n.SpanID != 50 && n.Tracepoint == "forged" {
			t.Errorf("span %d was overwritten by the duplicate batch", n.SpanID)
		}
	}
}

// TestBuilderOrphanResolvedByLateParent: reconstruction is a pure
// function of the stored set, so an orphan adopted under a synthetic
// root is re-homed when its parent finally arrives in a late batch
// (reordered delivery across agent reports).
func TestBuilderOrphanResolvedByLateParent(t *testing.T) {
	b := NewBuilder()
	var root Span
	for _, sp := range diamond() {
		if sp.SpanID == 10 {
			root = sp
			continue // root delayed in transit
		}
		b.Add(sp)
	}
	if tr := b.Trace(1); !tr.Synthetic || tr.Orphans != 2 {
		t.Fatalf("before late delivery: synthetic=%v orphans=%d, want true/2", tr.Synthetic, tr.Orphans)
	}

	b.AddBatch([]Span{root}) // the delayed batch lands
	tr := b.Trace(1)
	if tr.Synthetic || tr.Orphans != 0 {
		t.Fatalf("after late delivery: synthetic=%v orphans=%d, want false/0", tr.Synthetic, tr.Orphans)
	}
	if tr.Root.SpanID != 10 {
		t.Fatalf("root = %d, want the late-arriving 10", tr.Root.SpanID)
	}
}

// TestCriticalPathTieBreaks pins the deterministic tie-breaks: when two
// spans share the latest finish instant the path ends at the one with
// the smaller SpanID, and when a node's parents tie the walk keeps the
// first recorded parent.
func TestCriticalPathTieBreaks(t *testing.T) {
	b := NewBuilder()
	b.AddBatch([]Span{
		{TraceID: 7, SpanID: 1, Tracepoint: "root", Start: 0},
		{TraceID: 7, SpanID: 2, Parents: []uint64{1}, Tracepoint: "a", Start: 10 * time.Millisecond},
		{TraceID: 7, SpanID: 3, Parents: []uint64{1}, Tracepoint: "b", Start: 10 * time.Millisecond},
	})
	path := b.Trace(7).CriticalPath()
	ids := pathIDs(path)
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("endpoint tie path = %v, want [1 2] (smaller SpanID wins)", ids)
	}

	// A leaf whose two parents tie: the first recorded parent (3) wins.
	b.Add(Span{TraceID: 7, SpanID: 4, Parents: []uint64{3, 2}, Tracepoint: "join",
		Start: 20 * time.Millisecond})
	ids = pathIDs(b.Trace(7).CriticalPath())
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 3 || ids[2] != 4 {
		t.Fatalf("parent tie path = %v, want [1 3 4] (first recorded parent wins)", ids)
	}
}

func pathIDs(path []*Node) []uint64 {
	out := make([]uint64, len(path))
	for i, n := range path {
		out[i] = n.SpanID
	}
	return out
}
