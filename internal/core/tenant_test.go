package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/advice"
	"repro/internal/agent"
	"repro/internal/baggage"
	"repro/internal/bus"
	"repro/internal/plan"
	"repro/internal/simtime"
	"repro/internal/tracepoint"
)

func TestFairShare(t *testing.T) {
	cases := []struct {
		total, share, want int
	}{
		{1000, 1, 1000},  // single tenant: whole budget
		{1000, 0, 1000},  // unset share: whole budget
		{1000, 4, 250},   // even split
		{1000, 3, 333},   // floor division
		{10, 100, 1},     // oversubscribed: floor at 1, never 0
		{1, 2, 1},        // tiny budget still admits progress
		{-1, 4, -1},      // explicit unlimited passes through
		{0, 4, 0},        // unresolved default passes through (caller resolves)
		{1000, -3, 1000}, // nonsense share treated as no split
	}
	for _, c := range cases {
		if got := FairShare(c.total, c.share); got != c.want {
			t.Errorf("FairShare(%d, %d) = %d, want %d", c.total, c.share, got, c.want)
		}
	}
}

func TestFairLimitResolvesDefaults(t *testing.T) {
	cases := []struct {
		v, def, share, want int
	}{
		{0, 16384, 4, 4096}, // zero resolves to def, then splits
		{100, 16384, 4, 25}, // explicit value splits
		{-1, 16384, 4, -1},  // unlimited respected
		{0, 16384, 1, 16384},
	}
	for _, c := range cases {
		if got := fairLimit(c.v, c.def, c.share); got != c.want {
			t.Errorf("fairLimit(%d, %d, %d) = %d, want %d", c.v, c.def, c.share, got, c.want)
		}
	}
}

// TestTenantInstallCarriesQuotaSplit: a tenant frontend with a declared
// share stamps its installs with the tenant, the share, and fair-shared
// limits — visible on the wire, not re-derived per agent.
func TestTenantInstallCarriesQuotaSplit(t *testing.T) {
	b := bus.New()
	reg := tracepoint.NewRegistry()
	reg.Define("Tp", "v")

	var installs []agent.Install
	b.Subscribe(agent.ControlTopic, func(msg any) {
		if m, ok := msg.(agent.Install); ok {
			installs = append(installs, m)
		}
	})

	pt := NewWithOptions(b, reg, Options{Tenant: "alice", Share: 4})
	h, err := pt.Install(`From e In Tp GroupBy e.host Select e.host, COUNT`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(h.Name, "alice.") {
		t.Errorf("auto-name %q not tenant-prefixed", h.Name)
	}
	if len(installs) != 1 {
		t.Fatalf("installs published = %d, want 1", len(installs))
	}
	in := installs[0]
	if in.Tenant != "alice" || in.Share != 4 {
		t.Errorf("install tenant/share = %q/%d, want alice/4", in.Tenant, in.Share)
	}
	if in.Limits.MaxGroups != advice.DefaultMaxGroups/4 || in.Limits.MaxRaws != advice.DefaultMaxRaws/4 {
		t.Errorf("install limits not fair-shared: %+v", in.Limits)
	}
	// The compiled baggage budget is split too.
	budget := h.Plan.Programs[0].Safety.Budget
	if budget.MaxBytes != baggage.DefaultMaxBytes/4 || budget.MaxTuples != baggage.DefaultMaxTuples/4 {
		t.Errorf("compiled budget not fair-shared: %+v", budget)
	}
	// The replayed install (late-joining agents) carries the same stamps.
	replay := pt.Installs()
	if len(replay) != 1 || replay[0].Tenant != "alice" || replay[0].Share != 4 ||
		replay[0].Limits != in.Limits {
		t.Errorf("replayed install lost tenancy stamps: %+v", replay)
	}
}

// TestTenantIsolation: two tenant frontends over one agent fleet each see
// exactly their own query's results, even though both ride the shared
// results topic in a flat (tree-less) deployment.
func TestTenantIsolation(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		b := bus.New()
		reg := tracepoint.NewRegistry()
		tp := reg.Define("Tp", "v")
		ag := agent.New(env, tracepoint.ProcInfo{Host: "h1", ProcName: "svc", ProcID: 1}, reg, b, time.Second)

		alice := NewWithOptions(b, reg, Options{Tenant: "alice", Share: 2})
		bob := NewWithOptions(b, reg, Options{Tenant: "bob", Share: 2})

		ha, err := alice.Install(`From e In Tp GroupBy e.host Select e.host, COUNT`)
		if err != nil {
			t.Fatal(err)
		}
		hb, err := bob.Install(`From e In Tp Where e.v > 100 GroupBy e.host Select e.host, COUNT`)
		if err != nil {
			t.Fatal(err)
		}

		req := func() context.Context {
			return baggage.NewContext(tracepoint.WithProc(context.Background(),
				tracepoint.ProcInfo{Host: "h1", ProcName: "svc", ProcID: 1}), baggage.New())
		}
		for i := 0; i < 5; i++ {
			tp.Here(req(), 10)
		}
		tp.Here(req(), 200)
		ag.Flush()

		aRows, bRows := ha.Rows(), hb.Rows()
		if len(aRows) != 1 || aRows[0][1].Int() != 6 {
			t.Errorf("alice rows = %v, want one group with count 6", aRows)
		}
		if len(bRows) != 1 || bRows[0][1].Int() != 1 {
			t.Errorf("bob rows = %v, want one group with count 1", bRows)
		}
		// Cross-check: the namespaces really are disjoint — alice can take
		// a name bob already holds, because each frontend owns its own
		// installed-set.
		if _, err := alice.InstallNamed(hb.Name, `From e In Tp GroupBy e.host Select e.host, COUNT`, plan.Optimized); err != nil {
			t.Errorf("alice reusing bob's name must succeed (disjoint namespaces): %v", err)
		}
	})
}

// TestTenantUsageFeedsStatus: TenantUsage frames on the health topic
// aggregate into Status.Tenants on the primary frontend, and the tenants
// table renders.
func TestTenantUsageFeedsStatus(t *testing.T) {
	b := bus.New()
	reg := tracepoint.NewRegistry()
	pt := New(b, reg)

	b.Publish(agent.HealthTopic, agent.TenantUsage{
		Host: "h1", ProcName: "svc", Time: time.Second,
		Usage: []agent.TenantQuota{
			{Tenant: "alice", Queries: 2, Tuples: 10},
			{Tenant: "bob", Queries: 1, Tuples: 3},
		},
	})
	b.Publish(agent.HealthTopic, agent.TenantUsage{
		Host: "h2", ProcName: "svc", Time: time.Second,
		Usage: []agent.TenantQuota{
			{Tenant: "alice", Queries: 2, Tuples: 7},
		},
	})

	s := pt.StatusAt(2 * time.Second)
	if len(s.Tenants) != 2 {
		t.Fatalf("tenants = %+v, want alice and bob", s.Tenants)
	}
	a, bb := s.Tenants[0], s.Tenants[1]
	if a.Tenant != "alice" || a.Agents != 2 || a.Queries != 2 || a.Tuples != 17 {
		t.Errorf("alice aggregation wrong: %+v", a)
	}
	if bb.Tenant != "bob" || bb.Agents != 1 || bb.Queries != 1 || bb.Tuples != 3 {
		t.Errorf("bob aggregation wrong: %+v", bb)
	}
	text := RenderStatus(s)
	if !strings.Contains(text, "tenants (2):") || !strings.Contains(text, "alice") {
		t.Errorf("rendered status missing tenants table:\n%s", text)
	}
}

// TestTenantFrontendSubscriptionFootprint: a tenant frontend must not
// subscribe to the fleet-scaled topics (health, status, trace) — that is
// what keeps its inbound load flat as agents grow.
func TestTenantFrontendSubscriptionFootprint(t *testing.T) {
	b := bus.New()
	reg := tracepoint.NewRegistry()
	ten := NewWithOptions(b, reg, Options{Tenant: "alice", Share: 2})

	before := ten.FramesIn()
	b.Publish(agent.HealthTopic, agent.Heartbeat{Host: "h1", ProcName: "svc"})
	b.Publish(agent.TraceTopic, agent.SpanBatch{})
	b.Publish(agent.StatusRequestTopic, agent.StatusRequest{ID: "probe"})
	if got := ten.StatusAt(time.Second); len(got.Agents) != 0 {
		t.Errorf("tenant frontend tracked fleet health: %+v", got.Agents)
	}
	if ten.FramesIn() != before {
		t.Errorf("health/trace/status traffic counted as result frames")
	}

	b.Publish(agent.TenantResultsTopic("alice"), agent.Report{QueryID: "nope"})
	b.Publish(agent.ResultsTopic, agent.ReportBatch{})
	if got := ten.FramesIn(); got != before+2 {
		t.Errorf("FramesIn = %d, want %d", got, before+2)
	}
}
