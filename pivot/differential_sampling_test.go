package pivot

// The sampled differential mode: generated cases run a query that
// declares a Sample clause, each replay of the trace script being one
// request whose keep/suppress decision the originating agent mints into
// baggage. The statistical oracle is the UNSAMPLED evaluation of the same
// case (internal/oracle ignores the Sample clause), scaled by the number
// of requests:
//
//   - suppression is all-or-nothing per request and exactly accounted:
//     suppressed tracepoint crossings arrive in multiples of the script's
//     event count, and reported-weight + suppressed requests reconcile
//     with the oracle's totals through a 2-tier combiner tree;
//   - weighted COUNT/SUM are the Horvitz-Thompson estimates implied by
//     the kept-request count (exact up to float rounding), and the kept
//     count itself stays within the declared binomial confidence bound;
//   - every reported aggregate is flagged approximate (never silently
//     presented as exact);
//   - a query sampled at rate 1.0 is byte-identical to the exact path.
//
// Reproduce a failure with the seed printed in the failure message:
//
//	go test ./pivot -run TestSampledDifferentialWithinBounds -seed=<N>

import (
	"bytes"
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/oracle"
	"repro/internal/plan"
	"repro/internal/querygen"
	"repro/internal/randtest"
	"repro/internal/simtime"
	"repro/internal/tuple"
)

// diffSampleSeed starts the sampled sweep's disjoint seed range.
const diffSampleSeed = 3_000_000

// sampledRuns is how many requests (script replays) each sampled case
// drives: enough for the binomial bound to have teeth at the higher
// rates while keeping the 300-case sweep fast.
const sampledRuns = 60

// sampledZ is the declared confidence bound, in binomial standard
// deviations, on the kept-request count (and hence on the weighted
// estimates' relative error). The sweep is deterministic, so this is not
// a flake budget: it was chosen so every seeded case passes while a
// systematic weighting bug (wrong scale factor, decision drift across a
// split) still lands far outside it.
const sampledZ = 5.0

func TestSampledDifferentialWithinBounds(t *testing.T) {
	n := diffCases(t, 300, 80)
	randtest.Check(t, n, diffSampleSeed, runSampledDifferentialCase)
}

func runSampledDifferentialCase(seed int64) error {
	c := querygen.GenerateSampled(seed)
	rate := c.SampleRate

	var rows []tuple.Tuple
	var groups []*Group
	var suppressedCrossings int64
	var runErr error
	env := simtime.NewEnv()
	env.Run(func() {
		cfg := cluster.DefaultConfig()
		cfg.ReportInterval = 5 * time.Millisecond
		// The 2-tier combiner tree is load-bearing: the Exact flag and the
		// weighted fields must survive the extra pairwise merges at the mid
		// and root tiers, not just the flat agent→frontend path.
		cl := treeCluster(env, cfg)
		x := cluster.NewScriptExec(cl, c)
		h, err := cl.PT.Install(c.QueryText)
		if err != nil {
			runErr = fmt.Errorf("install sampled: %w", err)
			return
		}
		for i := 0; i < sampledRuns; i++ {
			if err := x.Run(); err != nil {
				runErr = fmt.Errorf("run %d: %w", i, err)
				return
			}
		}
		env.Sleep(3 * cfg.ReportInterval)
		cl.FlushAgents()
		rows, groups = h.Rows(), h.Groups()
		for _, p := range cl.Procs() {
			if p.Agent != nil {
				suppressedCrossings += p.Agent.Stats().SampledOut
			}
		}
	})
	if runErr != nil {
		return fmt.Errorf("query %q: %w", c.QueryText, runErr)
	}

	// The unsampled oracle: exact per-request rows (key, COUNT, SUM).
	want, err := oracleRows(c)
	if err != nil {
		return err
	}
	kTotal := int64(0) // tuples one request contributes to the join
	type exact struct{ count, sum float64 }
	wantByKey := map[string]exact{}
	for _, r := range want {
		wantByKey[r[0].Str()] = exact{count: r[1].Float(), sum: r[2].Float()}
		kTotal += r[1].Int()
	}

	// Suppression is all-or-nothing per request: a suppressed request
	// suppresses every one of the script's crossings, so the total must
	// divide evenly.
	nEvents := int64(len(c.Events))
	if suppressedCrossings%nEvents != 0 {
		return fmt.Errorf("rate %v: %d suppressed crossings is not a multiple of the %d crossings one request makes — a request was partially sampled",
			rate, suppressedCrossings, nEvents)
	}
	suppressed := suppressedCrossings / nEvents
	kept := int64(sampledRuns) - suppressed

	// The kept count is Binomial(runs, rate); the declared bound.
	mean := float64(sampledRuns) * rate
	sigma := math.Sqrt(float64(sampledRuns) * rate * (1 - rate))
	if math.Abs(float64(kept)-mean) > sampledZ*sigma+1 {
		return fmt.Errorf("rate %v: kept %d of %d requests, outside %v sigma of mean %.2f",
			rate, kept, sampledRuns, sampledZ, mean)
	}

	if kept == 0 {
		if len(rows) != 0 {
			return fmt.Errorf("rate %v: all requests suppressed but %d rows reported", rate, len(rows))
		}
		return nil
	}

	// Every reported aggregate must be flagged approximate: weight
	// 1/rate != 1 taints the state, and the flag must survive the tree.
	for _, g := range groups {
		for i, st := range g.States {
			if st.Exact() {
				return fmt.Errorf("rate %v: group %q state %d claims exactness for weighted folds", rate, g.Key, i)
			}
		}
	}

	// Weighted results: each kept request contributes exactly the oracle's
	// per-key COUNT and SUM at weight 1/rate, so the reported value must be
	// kept/rate times the oracle's (up to float rounding), and its relative
	// error against the true total (runs × oracle) obeys the binomial bound
	// already enforced on kept.
	relBound := sampledZ*math.Sqrt((1-rate)/(float64(sampledRuns)*rate)) + 2.0/mean
	var reportedWeight float64
	seen := map[string]bool{}
	for _, r := range rows {
		key := r[0].Str()
		w, ok := wantByKey[key]
		if !ok {
			return fmt.Errorf("rate %v: reported key %q unknown to the oracle", rate, key)
		}
		seen[key] = true
		gotCount, gotSum := r[1].Float(), r[2].Float()
		reportedWeight += gotCount
		expCount := float64(kept) / rate * w.count
		expSum := float64(kept) / rate * w.sum
		if math.Abs(gotCount-expCount) > 1e-6*math.Abs(expCount) {
			return fmt.Errorf("rate %v kept %d: key %q COUNT %v, want %v (oracle %v)\nquery: %s",
				rate, kept, key, gotCount, expCount, w.count, c.QueryText)
		}
		if math.Abs(gotSum-expSum) > 1e-6*math.Abs(expSum) {
			return fmt.Errorf("rate %v kept %d: key %q SUM %v, want %v (oracle %v)\nquery: %s",
				rate, kept, key, gotSum, expSum, w.sum, c.QueryText)
		}
		if trueCount := float64(sampledRuns) * w.count; math.Abs(gotCount-trueCount) > relBound*trueCount {
			return fmt.Errorf("rate %v: key %q weighted COUNT %v vs true %v exceeds declared relative bound %v",
				rate, key, gotCount, trueCount, relBound)
		}
	}
	if len(seen) != len(wantByKey) {
		return fmt.Errorf("rate %v kept %d: reported %d keys, oracle has %d\nquery: %s",
			rate, kept, len(seen), len(wantByKey), c.QueryText)
	}

	// Drop accounting: reported weight × rate + suppressed requests' share
	// reconciles exactly with the oracle count over all requests.
	reported := math.Round(reportedWeight * rate)
	if reported+float64(suppressed*kTotal) != float64(int64(sampledRuns)*kTotal) {
		return fmt.Errorf("rate %v: reported-weight %v (×rate = %v) + suppressed %d×%d != oracle %d×%d",
			rate, reportedWeight, reported, suppressed, kTotal, sampledRuns, kTotal)
	}
	return nil
}

// TestSampledErrorVsRate measures the estimator error the sampling model
// actually delivers, rate by rate. One fixed generated case drives a
// single request stream; the same query is installed under many
// independent names at each sweep rate, so every name mints its own
// keep/suppress decision per request and yields an independent
// Horvitz-Thompson estimate of the same true total. Each estimate's
// relative error must stay inside the declared binomial bound, and rate
// 1.0 must be exact. Run with -v to regenerate the measured table in
// EXPERIMENTS.md ("Sampling error vs rate").
func TestSampledErrorVsRate(t *testing.T) {
	const (
		estimators = 20  // independently sampled installs of the same query
		requests   = 500 // script replays driving all estimators at once
	)
	rates := []float64{0.05, 0.1, 0.25, 0.5, 1.0}

	c := querygen.GenerateBudgeted(diffSampleSeed + 900_000)
	trueTotal := 0.0 // requests x oracle per-request COUNT, set after the first run stamps the trace

	for _, rate := range rates {
		queryText := fmt.Sprintf("%s Sample %v", c.QueryText, rate)
		totals := make([]float64, estimators)
		var runErr error
		env := simtime.NewEnv()
		env.Run(func() {
			cfg := cluster.DefaultConfig()
			cfg.ReportInterval = 5 * time.Millisecond
			cl := treeCluster(env, cfg)
			x := cluster.NewScriptExec(cl, c)
			handles := make([]interface{ Rows() []tuple.Tuple }, estimators)
			for i := range handles {
				h, err := cl.PT.InstallNamed(fmt.Sprintf("QS%02d", i), queryText, plan.Optimized)
				if err != nil {
					runErr = fmt.Errorf("install estimator %d: %w", i, err)
					return
				}
				handles[i] = h
			}
			for i := 0; i < requests; i++ {
				if err := x.Run(); err != nil {
					runErr = fmt.Errorf("run %d: %w", i, err)
					return
				}
			}
			env.Sleep(3 * cfg.ReportInterval)
			cl.FlushAgents()
			for i, h := range handles {
				for _, r := range h.Rows() {
					totals[i] += r[1].Float()
				}
			}
		})
		if runErr != nil {
			t.Fatalf("rate %v: %v", rate, runErr)
		}
		if trueTotal == 0 { // the run above stamped the trace; the oracle can evaluate now
			want, err := oracleRows(c)
			if err != nil {
				t.Fatal(err)
			}
			var perReq float64 // COUNT total one request contributes
			for _, r := range want {
				perReq += r[1].Float()
			}
			if perReq == 0 {
				t.Fatalf("degenerate case, oracle total COUNT is zero: %s", c.QueryText)
			}
			trueTotal = float64(requests) * perReq
		}

		sigma := math.Sqrt((1 - rate) / (float64(requests) * rate))
		relBound := sampledZ*sigma + 2/(float64(requests)*rate)
		var sumAbs, maxAbs float64
		for i, got := range totals {
			relErr := math.Abs(got-trueTotal) / trueTotal
			sumAbs += relErr
			if relErr > maxAbs {
				maxAbs = relErr
			}
			if rate == 1 {
				if relErr != 0 {
					t.Fatalf("rate 1.0 estimator %d: total %v, want exactly %v", i, got, trueTotal)
				}
			} else if relErr > relBound {
				t.Fatalf("rate %v estimator %d: relative error %.4f exceeds bound %.4f (total %v, true %v)",
					rate, i, relErr, relBound, got, trueTotal)
			}
		}
		t.Logf("rate %.2f: %d estimators x %d requests: mean |rel err| %.4f, max %.4f, predicted 1 sigma %.4f",
			rate, estimators, requests, sumAbs/estimators, maxAbs, sigma)
	}
}

// TestSampledRateOneMatchesExactBytes drives the same script through a
// query sampled at rate 1.0 and through the plain exact query: rate 1.0
// must engage the decision path (a decision is minted, weight is 1) yet
// remain byte-identical to the exact pipeline — canonical result bytes
// equal, every aggregate state still flagged exact, so the encoded
// reports carry no weighted fields.
func TestSampledRateOneMatchesExactBytes(t *testing.T) {
	randtest.Check(t, 20, diffSampleSeed+500_000, func(seed int64) error {
		c := querygen.GenerateBudgeted(seed)

		run := func(queryText string) ([]tuple.Tuple, []*Group, error) {
			var rows []tuple.Tuple
			var groups []*Group
			var runErr error
			env := simtime.NewEnv()
			env.Run(func() {
				cfg := cluster.DefaultConfig()
				cfg.ReportInterval = 5 * time.Millisecond
				cl := treeCluster(env, cfg)
				x := cluster.NewScriptExec(cl, c)
				h, err := cl.PT.InstallNamed("QS", queryText, plan.Optimized)
				if err != nil {
					runErr = fmt.Errorf("install: %w", err)
					return
				}
				for i := 0; i < 5; i++ {
					if err := x.Run(); err != nil {
						runErr = err
						return
					}
				}
				env.Sleep(3 * cfg.ReportInterval)
				cl.FlushAgents()
				rows, groups = h.Rows(), h.Groups()
			})
			return rows, groups, runErr
		}

		exactRows, _, err := run(c.QueryText)
		if err != nil {
			return fmt.Errorf("exact: %w", err)
		}
		sampledRows, sampledGroups, err := run(c.QueryText + " Sample 1")
		if err != nil {
			return fmt.Errorf("rate 1.0: %w", err)
		}
		if !bytes.Equal(oracle.Canonical(exactRows), oracle.Canonical(sampledRows)) {
			return fmt.Errorf("rate 1.0 diverges from the exact path\nquery: %s\nexact:\n%s\nsampled:\n%s",
				c.QueryText, oracle.Format(exactRows), oracle.Format(sampledRows))
		}
		for _, g := range sampledGroups {
			for i, st := range g.States {
				if !st.Exact() {
					return fmt.Errorf("rate 1.0: group %q state %d flagged approximate", g.Key, i)
				}
				var exactEnc, gotEnc []byte
				gotEnc = st.Append(gotEnc)
				exactEnc = st.Clone().Append(exactEnc)
				if !bytes.Equal(gotEnc, exactEnc) || len(gotEnc) != st.EncodedSize() {
					return fmt.Errorf("rate 1.0: group %q state %d encoding unstable", g.Key, i)
				}
			}
		}
		return nil
	})
}
