// Package advice implements Pivot Tracing's advice: the intermediate
// representation queries compile to (§3, Table 2 of the paper), and the
// engine that evaluates it at tracepoints.
//
// An advice program is a fixed pipeline — Observe, then zero or more
// Unpacks, then Filters, then Pack and/or Emit. There are no jumps and no
// recursion, so advice is guaranteed to terminate (the paper's safety
// argument). Unpack joins tuples packed by advice at causally-preceding
// tracepoints, which is how the happened-before join is evaluated inline
// during request execution.
package advice

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/agg"
	"repro/internal/baggage"
	"repro/internal/query"
	"repro/internal/tuple"
)

// fireScratch recycles the per-fire working set. Safe because nothing
// downstream of Invoke retains the working tuples: the accumulator clones
// group representatives and raw rows, and baggage packs through a
// projection copy. The scratch is cleared before pooling so pooled slots
// don't pin observed values across fires.
type fireScratch struct {
	proj    tuple.Tuple
	working []tuple.Tuple
}

var firePool = sync.Pool{New: func() any { return new(fireScratch) }}

// Cost counts what a program's advice actually does at runtime — the
// paper's §4 "explain"-style live cost analysis (count tuples rather than
// aggregate them). Counters are cheap atomics shared by every woven copy
// of the program, so installed queries can be profiled without a separate
// counting run.
type Cost struct {
	// Invocations counts tracepoint crossings that reached this advice.
	Invocations atomic.Int64
	// Sampled counts crossings skipped by sampling: mod-N advice-level
	// sampling (SampleEvery) and request-level rate sampling (SampleRate)
	// both account here.
	Sampled atomic.Int64
	// DroppedByJoin counts crossings discarded because an Unpack found no
	// causally-preceding tuples (inner-join misses).
	DroppedByJoin atomic.Int64
	// TuplesFiltered counts working tuples discarded by FILTER predicates.
	TuplesFiltered atomic.Int64
	// TuplesPacked counts tuples stored into baggage.
	TuplesPacked atomic.Int64
	// PackedBytes counts the encoded content bytes of tuples offered to
	// PACK — the query's in-band baggage footprint before retention folding.
	PackedBytes atomic.Int64
	// PackRefused counts tuples refused by PACK because their slot or group
	// carried an eviction tombstone.
	PackRefused atomic.Int64
	// PackEvictedGroups, PackEvictedTuples and PackEvictedBytes count budget
	// evictions triggered by this program's packs (see baggage.PackStats).
	PackEvictedGroups atomic.Int64
	PackEvictedTuples atomic.Int64
	PackEvictedBytes  atomic.Int64
	// TuplesEmitted counts tuples sent to the process-local aggregator.
	TuplesEmitted atomic.Int64
	// Panics counts panics recovered from this advice at the tracepoint
	// boundary.
	Panics atomic.Int64
}

// UnpackOp retrieves tuples packed under Slot by advice earlier in the
// execution and joins them (cartesian) with the working tuples.
type UnpackOp struct {
	Slot   string
	Fields tuple.Schema // names of the unpacked fields, for explain output
}

// FilterOp discards working tuples that do not satisfy the predicate.
type FilterOp struct {
	Expr query.Expr
	// Bindings resolves the expression's field references to positions in
	// the working tuple.
	Bindings map[query.FieldRef]int
}

// Eval evaluates the filter against one working tuple.
func (f *FilterOp) Eval(w tuple.Tuple) bool {
	return f.Expr.Eval(func(ref query.FieldRef) tuple.Value {
		pos, ok := f.Bindings[ref]
		if !ok || pos >= len(w) {
			return tuple.Null
		}
		return w[pos]
	}).Bool()
}

// PackOp stores a projection of each working tuple into the baggage for
// advice at later tracepoints.
type PackOp struct {
	Slot   string
	Spec   baggage.SetSpec
	Source []int // positions of the working tuple to pack, in Spec.Fields order
}

// ComputeOp evaluates an expression over the working tuple and appends the
// result as a new column — used for computed outputs such as
// response.time - request.time.
type ComputeOp struct {
	Expr     query.Expr
	Bindings map[query.FieldRef]int
}

// Eval computes the derived value for one working tuple.
func (c *ComputeOp) Eval(w tuple.Tuple) tuple.Value {
	return c.Expr.Eval(func(ref query.FieldRef) tuple.Value {
		pos, ok := c.Bindings[ref]
		if !ok || pos >= len(w) {
			return tuple.Null
		}
		return w[pos]
	})
}

// EmitCol is one output column of an Emit, in Select order.
type EmitCol struct {
	IsAgg bool
	// Pos is the working-tuple position the column reads; -1 for a bare
	// COUNT.
	Pos int
	Fn  agg.Func // aggregator, when IsAgg
}

// EmitOp outputs rows to the process-local aggregator: one aggregated row
// per group, or — for queries with no grouping or aggregation — one raw
// row per working tuple.
type EmitOp struct {
	Cols    []EmitCol
	GroupBy []int // group-key positions in the working tuple
	Raw     bool  // no aggregation: emit each computed row
	// Schema names the emitted columns.
	Schema tuple.Schema
}

// Program is compiled advice for one tracepoint of one query.
type Program struct {
	// QueryID identifies the owning query; advice for the same query
	// shares baggage slots namespaced by this ID.
	QueryID string
	// Tracepoint is the name of the tracepoint this advice weaves into.
	Tracepoint string
	// Observe projects the tracepoint's exported tuple into the working
	// tuple (the OBSERVE operation); Fields names the observed values.
	Observe       []int
	ObserveFields tuple.Schema
	Unpacks       []UnpackOp
	Filters       []FilterOp
	Computes      []ComputeOp
	Pack          *PackOp
	Emit          *EmitOp

	// SampleEvery, when > 1, makes the advice process only one in every
	// SampleEvery crossings (the paper's §8 advice-level sampling).
	// Aggregates computed from sampled advice are correspondingly scaled
	// estimates; COUNT and SUM results must be multiplied by SampleEvery.
	SampleEvery int64

	// SampleRate, when in (0, 1], enables consistent request-level
	// sampling: the advice honors the per-request decision minted into
	// the reserved baggage sample slot at request creation. A suppressed
	// request is skipped before any work; an admitted one processes
	// normally, with emitted aggregates weighted by the inverse of the
	// decision's effective rate. Unlike SampleEvery this never splits a
	// request: every program of the query sees the same decision at every
	// crossing on the request's causal path. Values outside (0, 1] must
	// be clamped to 0 (disabled) before reaching the advice path — see
	// sampling.ClampRate.
	SampleRate float64

	// Safety bounds the program's runtime behavior (see Safety). The
	// zero value enables every default limit.
	Safety Safety

	// Cost holds the program's live execution counters.
	Cost Cost

	// Circuit-breaker state, shared by every woven copy of the program
	// (like Cost), so a fault seen at any tracepoint of a process
	// quarantines the program everywhere it is woven in that process.
	faults           atomic.Int64
	quarantined      atomic.Bool
	notified         atomic.Bool
	quarantineReason atomic.Pointer[string]
}

// WorkingSchema returns the field names of the working tuple: observed
// fields then each unpack's fields.
func (p *Program) WorkingSchema() tuple.Schema {
	s := p.ObserveFields
	for _, u := range p.Unpacks {
		s = s.Concat(u.Fields)
	}
	return s
}

// String renders the program in the paper's advice notation, e.g.
//
//	A2: OBSERVE delta
//	    UNPACK procName
//	    EMIT procName, SUM(delta)
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "OBSERVE %s", join(p.ObserveFields))
	for _, u := range p.Unpacks {
		fmt.Fprintf(&b, "\nUNPACK %s", join(u.Fields))
	}
	for _, f := range p.Filters {
		fmt.Fprintf(&b, "\nFILTER %s", f.Expr)
	}
	for _, c := range p.Computes {
		fmt.Fprintf(&b, "\nCOMPUTE %s", c.Expr)
	}
	if p.Pack != nil {
		fmt.Fprintf(&b, "\nPACK%s %s", packKind(p.Pack.Spec), describePack(p.Pack.Spec))
	}
	if p.Emit != nil {
		fmt.Fprintf(&b, "\nEMIT %s", join(p.Emit.Schema))
	}
	return b.String()
}

// AnnotatedString renders the program like String but with live execution
// counters attached to each operator line — the EXPLAIN ANALYZE view of the
// plan. Counters are per-stage: a program with several FILTERs shows the
// summed filter drops on the first FILTER line, and join-miss drops are
// summed across UNPACKs. Reading the atomics is racy-but-monotonic; callers
// typically render after a flush quiesces the workload.
func (p *Program) AnnotatedString() string {
	var b strings.Builder
	inv := p.Cost.Invocations.Load()
	sampled := p.Cost.Sampled.Load()
	fmt.Fprintf(&b, "OBSERVE %s", join(p.ObserveFields))
	annotate(&b, counter{"fires", inv}, counter{"sampled", sampled})
	joinDrops := p.Cost.DroppedByJoin.Load()
	for i, u := range p.Unpacks {
		fmt.Fprintf(&b, "\nUNPACK %s", join(u.Fields))
		if i == 0 {
			annotate(&b, counter{"join-drops", joinDrops})
		}
	}
	filtered := p.Cost.TuplesFiltered.Load()
	for i, f := range p.Filters {
		fmt.Fprintf(&b, "\nFILTER %s", f.Expr)
		if i == 0 {
			annotate(&b, counter{"filtered", filtered})
		}
	}
	for _, c := range p.Computes {
		fmt.Fprintf(&b, "\nCOMPUTE %s", c.Expr)
	}
	if p.Pack != nil {
		fmt.Fprintf(&b, "\nPACK%s %s", packKind(p.Pack.Spec), describePack(p.Pack.Spec))
		annotate(&b,
			counter{"packed", p.Cost.TuplesPacked.Load()},
			counter{"bytes", p.Cost.PackedBytes.Load()},
			counter{"refused", p.Cost.PackRefused.Load()},
			counter{"evicted", p.Cost.PackEvictedTuples.Load()},
		)
	}
	if p.Emit != nil {
		fmt.Fprintf(&b, "\nEMIT %s", join(p.Emit.Schema))
		annotate(&b, counter{"emitted", p.Cost.TuplesEmitted.Load()})
	}
	return b.String()
}

// counter is one name=value annotation on an operator line.
type counter struct {
	name string
	val  int64
}

// annotate appends a right-aligned "[name=v name=v]" block, omitting
// zero-valued counters after the first (the first is the operator's primary
// throughput counter and always shown).
func annotate(b *strings.Builder, cs ...counter) {
	b.WriteString("  [")
	wrote := false
	for i, c := range cs {
		if i > 0 && c.val == 0 {
			continue
		}
		if wrote {
			b.WriteByte(' ')
		}
		fmt.Fprintf(b, "%s=%d", c.name, c.val)
		wrote = true
	}
	b.WriteByte(']')
}

// packKind renders the retention suffix of a PACK operator.
func packKind(spec baggage.SetSpec) string {
	switch spec.Kind {
	case baggage.First:
		return "-FIRST"
	case baggage.FirstN:
		return fmt.Sprintf("-FIRST%d", spec.N)
	case baggage.Recent:
		return "-RECENT"
	case baggage.RecentN:
		return fmt.Sprintf("-RECENT%d", spec.N)
	case baggage.Agg:
		return "-AGG"
	}
	return ""
}

func describePack(spec baggage.SetSpec) string {
	if spec.Kind != baggage.Agg {
		return join(spec.Fields)
	}
	parts := make([]string, 0, len(spec.GroupBy)+len(spec.Aggs))
	for _, g := range spec.GroupBy {
		parts = append(parts, spec.Fields[g])
	}
	for _, a := range spec.Aggs {
		parts = append(parts, fmt.Sprintf("%s(%s)", a.Fn, spec.Fields[a.Pos]))
	}
	return strings.Join(parts, ", ")
}

func join(s tuple.Schema) string {
	if len(s) == 0 {
		return "-"
	}
	return strings.Join(s, ", ")
}

// Emitter receives tuples emitted by advice for process-local aggregation;
// the Pivot Tracing agent implements it.
type Emitter interface {
	// EmitTuple delivers one working tuple to the aggregator for the
	// given program's Emit operation. w is backed by a pooled per-fire
	// buffer and is only valid for the duration of the call: implementations
	// must fold or Clone it, never retain it.
	EmitTuple(p *Program, w tuple.Tuple)
}

// WeightedEmitter is an optional Emitter extension for request-level
// sampling: tuples from a sampled request are delivered with their
// inverse-rate weight so COUNT/SUM aggregate to unbiased estimates.
// Emitters without it receive the tuples unweighted (and the results
// silently under-count — agents always implement this).
type WeightedEmitter interface {
	// EmitTupleWeighted is EmitTuple with a sampling weight (> 1).
	EmitTupleWeighted(p *Program, w tuple.Tuple, weight float64)
}

// SampleSink is an optional Emitter extension notified when advice
// suppresses a crossing because the request's sampling decision said
// "not sampled" — the agent's drop accounting for sampled-out work.
type SampleSink interface {
	NoteSampledOut(p *Program)
}

// Advice is a woven instance of a program bound to an emitter. It
// implements the tracepoint.Advice interface.
type Advice struct {
	Prog    *Program
	Emitter Emitter
}

// Invoke runs the advice pipeline for one tracepoint crossing.
func (a *Advice) Invoke(ctx context.Context, vals tuple.Tuple) {
	p := a.Prog
	if p.Quarantined() {
		return
	}
	if fp := failpoint.Load(); fp != nil {
		(*fp)(p, vals)
	}
	// Request-level sampling: honor the decision minted into the request's
	// baggage at creation. A suppressed request returns before the fire
	// scratch is even acquired — the sampled-out fast path allocates
	// nothing. A request with no decision (e.g. one originating in an
	// unmonitored process) is processed exactly, at weight 1.
	weight := 1.0
	var bag *baggage.Baggage
	if p.SampleRate > 0 {
		bag = baggage.FromContext(ctx)
		if r, ok := bag.SampleRate(p.QueryID); ok {
			if r <= 0 {
				p.Cost.Invocations.Add(1)
				p.Cost.Sampled.Add(1)
				if ss, ok := a.Emitter.(SampleSink); ok {
					ss.NoteSampledOut(p)
				}
				return
			}
			weight = 1 / r
		}
	}
	if n := p.SampleEvery; n > 1 {
		if p.Cost.Invocations.Add(1)%n != 0 {
			p.Cost.Sampled.Add(1)
			return
		}
	} else {
		p.Cost.Invocations.Add(1)
	}
	fs := firePool.Get().(*fireScratch)
	defer func() {
		for i := range fs.proj {
			fs.proj[i] = tuple.Value{}
		}
		fs.proj = fs.proj[:0]
		for i := range fs.working {
			fs.working[i] = nil
		}
		fs.working = fs.working[:0]
		firePool.Put(fs)
	}()
	fs.proj = vals.AppendProject(fs.proj[:0], p.Observe)
	working := append(fs.working[:0], fs.proj)
	fs.working = working

	// UNPACK: join tuples from causally-preceding advice. Missing baggage
	// or an empty slot means no causal predecessor: inner-join semantics
	// drop the observation.
	if bag == nil && (len(p.Unpacks) > 0 || p.Pack != nil) {
		bag = baggage.FromContext(ctx)
	}
	// Deliver eviction tombstones before the unpack loop: a fully-evicted
	// slot makes the join below drop this fire entirely, and the drop
	// accounting must survive exactly that case.
	if bag != nil && len(p.Unpacks) > 0 {
		if ds, ok := a.Emitter.(DropSink); ok && bag.HasDrops() {
			if recs := bag.DropRecords(p.QueryID); len(recs) > 0 {
				ds.NoteBaggageDrops(p, recs)
			}
		}
	}
	ceiling := p.Safety.costCeiling()
	for _, u := range p.Unpacks {
		if bag == nil {
			p.Cost.DroppedByJoin.Add(1)
			return
		}
		unpacked := bag.Unpack(u.Slot)
		if len(unpacked) == 0 {
			p.Cost.DroppedByJoin.Add(1)
			return
		}
		// Cartesian joins are where a single fire's cost can explode;
		// check the ceiling before materializing the product.
		if ceiling >= 0 && int64(len(working))*int64(len(unpacked)) > ceiling {
			a.quarantine(fmt.Sprintf("fire cost %d×%d tuples exceeds ceiling %d at unpack %s",
				len(working), len(unpacked), ceiling, u.Slot))
			return
		}
		next := make([]tuple.Tuple, 0, len(working)*len(unpacked))
		for _, w := range working {
			for _, t := range unpacked {
				next = append(next, w.Concat(t))
			}
		}
		working = next
	}

	// FILTER
	for _, f := range p.Filters {
		kept := working[:0]
		for _, w := range working {
			if f.Eval(w) {
				kept = append(kept, w)
			}
		}
		if dropped := len(working) - len(kept); dropped > 0 {
			p.Cost.TuplesFiltered.Add(int64(dropped))
		}
		working = kept
		if len(working) == 0 {
			return
		}
	}

	// COMPUTE: append derived columns.
	for _, cop := range p.Computes {
		for i, w := range working {
			working[i] = append(w, cop.Eval(w))
		}
	}

	// PACK: budgeted — tombstoned slots refuse the pack and over-budget
	// queries evict whole groups with tombstone accounting.
	if p.Pack != nil && bag != nil {
		var st baggage.PackStats
		var packedBytes int64
		for _, w := range working {
			proj := w.Project(p.Pack.Source)
			packedBytes += int64(tuple.SizeTuple(proj))
			st.Add(bag.PackBudgeted(p.Pack.Slot, p.Pack.Spec, p.Safety.Budget, proj))
		}
		p.Cost.TuplesPacked.Add(st.Packed)
		p.Cost.PackedBytes.Add(packedBytes)
		if st.RefusedTuples > 0 {
			p.Cost.PackRefused.Add(st.RefusedTuples)
		}
		if st.EvictedGroups > 0 {
			p.Cost.PackEvictedGroups.Add(st.EvictedGroups)
			p.Cost.PackEvictedTuples.Add(st.EvictedTuples)
			p.Cost.PackEvictedBytes.Add(st.EvictedBytes)
			if ps, ok := a.Emitter.(PackStatsSink); ok {
				ps.NotePackStats(p, st)
			}
		}
	}

	// EMIT
	if p.Emit != nil && a.Emitter != nil {
		if we, ok := a.Emitter.(WeightedEmitter); ok && weight != 1 {
			for _, w := range working {
				we.EmitTupleWeighted(p, w, weight)
			}
		} else {
			for _, w := range working {
				a.Emitter.EmitTuple(p, w)
			}
		}
		p.Cost.TuplesEmitted.Add(int64(len(working)))
	}
}
