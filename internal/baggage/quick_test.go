package baggage

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/agg"
	"repro/internal/tuple"
)

// branchTree drives a random sequence of pack/split/join/serialize
// operations over a set of live baggage branches, tracking the expected
// total count packed into an AGG(COUNT) slot. The invariant: after joining
// everything back together, the count equals the number of packs — every
// tuple delivered exactly once, across any branching topology and any
// number of wire round-trips.
func branchTree(seed int64, steps int) (got, want int64) {
	rng := rand.New(rand.NewSource(seed))
	spec := SetSpec{Kind: Agg, Fields: tuple.Schema{"v"},
		Aggs: []AggField{{Pos: 0, Fn: agg.Count}}}
	live := []*Baggage{New()}
	var packs int64
	for i := 0; i < steps; i++ {
		k := rng.Intn(len(live))
		switch rng.Intn(5) {
		case 0, 1: // pack
			live[k].Pack("c", spec, tuple.Tuple{tuple.Int(int64(i))})
			packs++
		case 2: // split
			a, b := live[k].Split()
			live[k] = a
			live = append(live, b)
		case 3: // join two branches
			if len(live) > 1 {
				j := rng.Intn(len(live))
				if j != k {
					merged := Join(live[k], live[j])
					live[k] = merged
					live = append(live[:j], live[j+1:]...)
				}
			}
		case 4: // wire round-trip
			live[k] = Deserialize(live[k].Serialize())
		}
	}
	all := live[0]
	for _, b := range live[1:] {
		all = Join(all, b)
	}
	rows := all.Unpack("c")
	if len(rows) == 0 {
		return 0, packs
	}
	return rows[0][0].Int(), packs
}

func TestQuickExactlyOnceAcrossBranchTopologies(t *testing.T) {
	f := func(seed int64) bool {
		got, want := branchTree(seed, 40)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSerializeRoundtripPreservesEverything: serialize/deserialize is
// lossless for random baggage contents across all set kinds.
func TestQuickSerializeRoundtripPreservesEverything(t *testing.T) {
	kinds := []SetSpec{
		{Kind: All, Fields: tuple.Schema{"a", "b"}},
		{Kind: First, Fields: tuple.Schema{"a", "b"}},
		{Kind: FirstN, N: 3, Fields: tuple.Schema{"a", "b"}},
		{Kind: Recent, Fields: tuple.Schema{"a", "b"}},
		{Kind: RecentN, N: 2, Fields: tuple.Schema{"a", "b"}},
		{Kind: Frontier, Fields: tuple.Schema{"a", "b"}},
		{Kind: Agg, Fields: tuple.Schema{"a", "b"},
			GroupBy: []int{0}, Aggs: []AggField{{Pos: 1, Fn: agg.Sum}}},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := New()
		for s, spec := range kinds {
			slot := spec.Kind.String() + string(rune('0'+s))
			for i := 0; i < 1+rng.Intn(5); i++ {
				b.Pack(slot, spec, tuple.Tuple{
					tuple.String(string(rune('x' + rng.Intn(3)))),
					tuple.Int(int64(rng.Intn(100))),
				})
			}
		}
		d := Deserialize(b.Serialize())
		for s, spec := range kinds {
			slot := spec.Kind.String() + string(rune('0'+s))
			want := b.Unpack(slot)
			got := d.Unpack(slot)
			if len(want) != len(got) {
				return false
			}
			for i := range want {
				if !want[i].Equal(got[i]) {
					return false
				}
			}
		}
		return d.ByteSize() == b.ByteSize()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSplitNeverLeaksAcrossSiblings: tuples packed in one branch are
// never visible in a concurrent sibling, for random nested splits.
func TestQuickSplitNeverLeaksAcrossSiblings(t *testing.T) {
	spec := SetSpec{Kind: All, Fields: tuple.Schema{"v"}}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		root := New()
		a, b := root.Split()
		// Randomly nest splits under a; pack only in the a-subtree.
		branches := []*Baggage{a}
		for i := 0; i < rng.Intn(4); i++ {
			k := rng.Intn(len(branches))
			l, r := branches[k].Split()
			branches[k] = l
			branches = append(branches, r)
		}
		for _, br := range branches {
			br.Pack("s", spec, tuple.Tuple{tuple.Int(1)})
		}
		return b.Unpack("s") == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMergeCommutesWithWireRoundtrip: joining two branches gives the
// same result whether or not each branch first crossed the wire — i.e. the
// Set merge/union semantics of every kind (append, left-wins, capacity
// clamps, frontier dedup, AGG group merge) survive the varint codec.
func TestQuickMergeCommutesWithWireRoundtrip(t *testing.T) {
	kinds := []SetSpec{
		{Kind: All, Fields: tuple.Schema{"a", "b"}},
		{Kind: First, Fields: tuple.Schema{"a", "b"}},
		{Kind: FirstN, N: 3, Fields: tuple.Schema{"a", "b"}},
		{Kind: Recent, Fields: tuple.Schema{"a", "b"}},
		{Kind: RecentN, N: 2, Fields: tuple.Schema{"a", "b"}},
		{Kind: Frontier, Fields: tuple.Schema{"a", "b"}},
		{Kind: Agg, Fields: tuple.Schema{"a", "b"},
			GroupBy: []int{0}, Aggs: []AggField{{Pos: 1, Fn: agg.Sum}}},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		left, right := New().Split()
		for s, spec := range kinds {
			slot := spec.Kind.String() + string(rune('0'+s))
			for _, br := range []*Baggage{left, right} {
				for i := 0; i < rng.Intn(5); i++ {
					br.Pack(slot, spec, tuple.Tuple{
						tuple.String(string(rune('x' + rng.Intn(3)))),
						tuple.Int(int64(rng.Intn(100))),
					})
				}
			}
		}
		direct := Join(left, right)
		wired := Join(Deserialize(left.Serialize()), Deserialize(right.Serialize()))
		for s, spec := range kinds {
			slot := spec.Kind.String() + string(rune('0'+s))
			want := direct.Unpack(slot)
			got := wired.Unpack(slot)
			if len(want) != len(got) {
				return false
			}
			for i := range want {
				if !want[i].Equal(got[i]) {
					return false
				}
			}
			// Kind-specific merge invariants.
			switch spec.Kind {
			case First, Recent:
				if len(got) > 1 {
					return false
				}
			case FirstN, RecentN:
				if len(got) > spec.N {
					return false
				}
			case Frontier:
				for i := range got {
					for j := i + 1; j < len(got); j++ {
						if got[i].Equal(got[j]) {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
