package tuple

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Binary encoding: one tag byte (the Kind), then a kind-specific payload.
// Integers use zig-zag varints; floats use 8 fixed bytes; strings are
// length-prefixed. Tuples are a uvarint count followed by each value.

var errTruncated = errors.New("tuple: truncated encoding")

// AppendValue appends the binary encoding of v to buf.
func AppendValue(buf []byte, v Value) []byte {
	buf = append(buf, byte(v.kind))
	switch v.kind {
	case KindNull:
	case KindInt:
		buf = binary.AppendVarint(buf, int64(v.num))
	case KindFloat:
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], v.num)
		buf = append(buf, tmp[:]...)
	case KindString:
		buf = binary.AppendUvarint(buf, uint64(len(v.str)))
		buf = append(buf, v.str...)
	case KindBool:
		buf = append(buf, byte(v.num))
	}
	return buf
}

// DecodeValue decodes one value from the front of buf.
func DecodeValue(buf []byte) (Value, []byte, error) {
	if len(buf) == 0 {
		return Null, nil, errTruncated
	}
	kind, rest := Kind(buf[0]), buf[1:]
	switch kind {
	case KindNull:
		return Null, rest, nil
	case KindInt:
		n, k := binary.Varint(rest)
		if k <= 0 {
			return Null, nil, errTruncated
		}
		return Int(n), rest[k:], nil
	case KindFloat:
		if len(rest) < 8 {
			return Null, nil, errTruncated
		}
		bits := binary.LittleEndian.Uint64(rest)
		return Float(math.Float64frombits(bits)), rest[8:], nil
	case KindString:
		n, k := binary.Uvarint(rest)
		if k <= 0 || uint64(len(rest)-k) < n {
			return Null, nil, errTruncated
		}
		return String(string(rest[k : k+int(n)])), rest[k+int(n):], nil
	case KindBool:
		if len(rest) < 1 {
			return Null, nil, errTruncated
		}
		return Bool(rest[0] != 0), rest[1:], nil
	default:
		return Null, nil, fmt.Errorf("tuple: bad kind tag %d", kind)
	}
}

// AppendTuple appends the binary encoding of t to buf.
func AppendTuple(buf []byte, t Tuple) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(t)))
	for _, v := range t {
		buf = AppendValue(buf, v)
	}
	return buf
}

// DecodeTuple decodes one tuple from the front of buf.
func DecodeTuple(buf []byte) (Tuple, []byte, error) {
	n, k := binary.Uvarint(buf)
	if k <= 0 {
		return nil, nil, errTruncated
	}
	rest := buf[k:]
	// Each value takes at least one byte, so a corrupt count larger than
	// the remaining buffer must not drive the preallocation. Compare in
	// uint64: a count above MaxInt64 would go negative through int(n).
	capHint := len(rest)
	if n < uint64(capHint) {
		capHint = int(n)
	}
	t := make(Tuple, 0, capHint)
	for i := uint64(0); i < n; i++ {
		var v Value
		var err error
		v, rest, err = DecodeValue(rest)
		if err != nil {
			return nil, nil, err
		}
		t = append(t, v)
	}
	return t, rest, nil
}

// UvarintLen returns the number of bytes binary.AppendUvarint writes for x.
func UvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// VarintLen returns the number of bytes binary.AppendVarint writes for x.
func VarintLen(x int64) int {
	return UvarintLen(uint64(x)<<1 ^ uint64(x>>63))
}

// EncodedSize returns the number of bytes AppendValue would write for v.
// It is computed arithmetically — no buffer is built — so size accounting
// on hot paths (baggage budgets, report batching) never allocates.
func EncodedSize(v Value) int {
	switch v.kind {
	case KindInt:
		return 1 + VarintLen(int64(v.num))
	case KindFloat:
		return 1 + 8
	case KindString:
		return 1 + UvarintLen(uint64(len(v.str))) + len(v.str)
	case KindBool:
		return 2
	default: // KindNull and unknown kinds encode as the bare tag byte
		return 1
	}
}

// SizeTuple returns the number of bytes AppendTuple would write for t,
// without building the encoding.
func SizeTuple(t Tuple) int {
	n := UvarintLen(uint64(len(t)))
	for _, v := range t {
		n += EncodedSize(v)
	}
	return n
}
