// Netsim hooks: scheduled capacity faults for the flow-level simulator.
// The cluster experiments inject faults by hand-rolling goroutines that
// sleep and call Network.SetRate; Schedule packages that pattern as data,
// so chaos scenarios can be declared up front and replayed exactly.

package faultinject

import (
	"sort"
	"time"

	"repro/internal/netsim"
	"repro/internal/simtime"
)

// LinkFault is one scheduled capacity change: at virtual time At, set the
// named netsim link to Rate bytes/second (a limplock is a rate collapse; a
// repair is the rate restored).
type LinkFault struct {
	At   time.Duration
	Link string
	Rate float64
}

// Schedule installs the faults on the network, to be applied at their
// virtual times by a managed goroutine. Faults are applied in At order
// regardless of input order. Must be called before env.Run starts, or from
// a managed goroutine.
func Schedule(env *simtime.Env, n *netsim.Network, faults []LinkFault) {
	fs := make([]LinkFault, len(faults))
	copy(fs, faults)
	sort.SliceStable(fs, func(i, j int) bool { return fs[i].At < fs[j].At })
	env.Go(func() {
		for _, f := range fs {
			if d := f.At - env.Now(); d > 0 {
				env.Sleep(d)
			}
			if env.Done() {
				return
			}
			n.SetRate(f.Link, f.Rate)
		}
	})
}
