// Package hbase implements a simulated HBase: a Master assigning key-range
// regions to RegionServers, RegionServers serving gets and scans through
// HDFS with a bounded handler pool, and a client library. Fault injection
// covers the paper's §6.2 replications: rogue garbage collection pauses in
// a RegionServer, and the cluster-wide latency effects of a limping NIC.
package hbase

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/simtime"
	"repro/internal/tracepoint"
)

// RegionServerHandlers is the RPC handler pool size per RegionServer.
const RegionServerHandlers = 30

// Config controls an HBase deployment.
type Config struct {
	// Regions is the number of key-range regions (default: one per
	// RegionServer).
	Regions int
	// GCInterval and GCPause enable rogue garbage collection on selected
	// RegionServers: every GCInterval the server stops the world for
	// GCPause.
	GCInterval time.Duration
	GCPause    time.Duration
}

// HBase is one deployment: a Master plus RegionServers.
type HBase struct {
	Master *cluster.Process
	cfg    Config

	mu      sync.Mutex
	servers []*RegionServer
	regions int
	routing func(row string, servers int) int
}

// New starts the HBase Master.
func New(c *cluster.Cluster, masterHost string, cfg Config) *HBase {
	hb := &HBase{Master: c.Start(masterHost, "HBaseMaster"), cfg: cfg}
	hb.Master.Define("Master.Assign", "region")
	return hb
}

// RegionServer serves the rows of its assigned regions.
type RegionServer struct {
	Proc *cluster.Process
	hb   *HBase
	fs   *hdfs.Client
	sem  *simtime.Semaphore

	// draining, when set, removes the server from row routing (a failover
	// or decommission). In-flight requests finish; new requests route to
	// the next live server.
	draining atomic.Bool

	gcMu    sync.Mutex
	gcUntil time.Duration
	rogueGC bool

	tpClient  *tracepoint.Tracepoint // RS.ClientService
	tpEnqueue *tracepoint.Tracepoint
	tpDequeue *tracepoint.Tracepoint
	tpDone    *tracepoint.Tracepoint
	tpGCStart *tracepoint.Tracepoint
	tpGCEnd   *tracepoint.Tracepoint
}

// AddRegionServer starts a RegionServer on a host, reading its store files
// through the given NameNode.
func (hb *HBase) AddRegionServer(c *cluster.Cluster, host string, nn *hdfs.NameNode, fsCfg hdfs.ClientConfig) *RegionServer {
	proc := c.Start(host, "RegionServer")
	rs := &RegionServer{
		Proc: proc,
		hb:   hb,
		fs:   hdfs.NewClient(proc, nn, fsCfg),
		sem:  c.Env.NewSemaphore(RegionServerHandlers),
	}
	rs.tpClient = proc.Define("RS.ClientService", "op", "row", "size")
	rs.tpEnqueue = proc.Define("RS.Enqueue", "op")
	rs.tpDequeue = proc.Define("RS.Dequeue", "op")
	rs.tpDone = proc.Define("RS.ProcessEnd", "op")
	rs.tpGCStart = proc.Define("RS.GCStart")
	rs.tpGCEnd = proc.Define("RS.GCEnd")
	proc.Handle("ClientService.Get", func(ctx context.Context, req any) (any, error) {
		return rs.serve(ctx, "get", req.(OpReq))
	})
	proc.Handle("ClientService.Scan", func(ctx context.Context, req any) (any, error) {
		return rs.serve(ctx, "scan", req.(OpReq))
	})
	hb.mu.Lock()
	hb.servers = append(hb.servers, rs)
	hb.regions = len(hb.servers)
	if hb.cfg.Regions > hb.regions {
		hb.regions = hb.cfg.Regions
	}
	hb.mu.Unlock()
	return rs
}

// EnableRogueGC starts periodic stop-the-world pauses on this server (the
// §6.2 rogue GC replication).
func (rs *RegionServer) EnableRogueGC(interval, pause time.Duration) {
	rs.gcMu.Lock()
	if rs.rogueGC {
		rs.gcMu.Unlock()
		return
	}
	rs.rogueGC = true
	rs.gcMu.Unlock()
	env := rs.Proc.C.Env
	env.Go(func() {
		for !env.Done() {
			env.Sleep(interval)
			// Each pause is one traced execution with its own baggage, so
			// the GC span query can join start and end timestamps.
			ctx := rs.Proc.NewRequest()
			rs.tpGCStart.Here(ctx)
			rs.gcMu.Lock()
			rs.gcUntil = env.Now() + pause
			rs.gcMu.Unlock()
			env.Sleep(pause)
			rs.tpGCEnd.Here(ctx)
		}
	})
}

// maybeGCStall blocks the calling handler until any in-progress GC pause
// ends (stop-the-world).
func (rs *RegionServer) maybeGCStall() {
	env := rs.Proc.C.Env
	for {
		rs.gcMu.Lock()
		until := rs.gcUntil
		rs.gcMu.Unlock()
		now := env.Now()
		if until <= now {
			return
		}
		env.Sleep(until - now)
	}
}

// OpReq is a get or scan request.
type OpReq struct {
	Row  string
	Size float64 // bytes to return
}

// serve handles one get/scan: queueing on the handler pool, a store-file
// read through HDFS, and CPU work.
func (rs *RegionServer) serve(ctx context.Context, op string, r OpReq) (any, error) {
	rs.tpClient.Here(ctx, op, r.Row, r.Size)
	rs.tpEnqueue.Here(ctx, op)
	rs.sem.Acquire()
	defer rs.sem.Release()
	rs.maybeGCStall()
	rs.tpDequeue.Here(ctx, op)

	// Read the store file data from HDFS. Gets read a small block; scans
	// stream the full size.
	file := fmt.Sprintf("/hbase/%s/store", regionOf(r.Row, rs.hb.regionCount()))
	if err := rs.fs.Read(ctx, file, 0, r.Size); err != nil {
		return nil, err
	}
	rs.Proc.C.Env.Sleep(time.Duration(r.Size/400e6*float64(time.Second)) + 50*time.Microsecond)
	rs.maybeGCStall()
	rs.tpDone.Here(ctx, op)
	return r.Size, nil
}

func (hb *HBase) regionCount() int {
	hb.mu.Lock()
	defer hb.mu.Unlock()
	return hb.regions
}

// Servers returns the RegionServers in add order (fault-injection handle).
func (hb *HBase) Servers() []*RegionServer {
	hb.mu.Lock()
	defer hb.mu.Unlock()
	return append([]*RegionServer(nil), hb.servers...)
}

// SetDraining marks the server as draining (or restores it). Draining
// servers are skipped by row routing, shifting their key ranges onto the
// next live servers — the cascading-failover and decommission hook.
func (rs *RegionServer) SetDraining(d bool) { rs.draining.Store(d) }

// Draining reports whether the server is currently out of the routing.
func (rs *RegionServer) Draining() bool { return rs.draining.Load() }

// SetRouting overrides the row-to-server routing function with fn (row,
// server count) -> server index; nil restores the default hash routing.
// Region rebalancing is modeled by swapping routing functions at runtime.
func (hb *HBase) SetRouting(fn func(row string, servers int) int) {
	hb.mu.Lock()
	hb.routing = fn
	hb.mu.Unlock()
}

// serverFor routes a row key to its RegionServer: the routing function's
// pick (default: hash), then linear probing past draining servers.
func (hb *HBase) serverFor(row string) *RegionServer {
	hb.mu.Lock()
	defer hb.mu.Unlock()
	n := len(hb.servers)
	if n == 0 {
		return nil
	}
	idx := 0
	if hb.routing != nil {
		idx = hb.routing(row, n) % n
		if idx < 0 {
			idx += n
		}
	} else {
		idx = hashRow(row) % n
	}
	for probe := 0; probe < n; probe++ {
		rs := hb.servers[(idx+probe)%n]
		if !rs.draining.Load() {
			return rs
		}
	}
	return nil
}

// AddRegionServers is the bulk-spawn path: one RegionServer per host, in
// order, all reading through the same NameNode.
func (hb *HBase) AddRegionServers(c *cluster.Cluster, hosts []string, nn *hdfs.NameNode, fsCfg hdfs.ClientConfig) []*RegionServer {
	out := make([]*RegionServer, len(hosts))
	for i, h := range hosts {
		out[i] = hb.AddRegionServer(c, h, nn, fsCfg)
	}
	return out
}

// HostFor returns the host currently serving row (after routing overrides
// and draining probes), or "" with no live servers. Scenario assertions
// use it to predict where load lands.
func (hb *HBase) HostFor(row string) string {
	rs := hb.serverFor(row)
	if rs == nil {
		return ""
	}
	return rs.Proc.Info.Host
}

func hashRow(row string) int {
	h := 0
	for _, c := range row {
		h = h*31 + int(c)
	}
	if h < 0 {
		h = -h
	}
	return h
}

func regionOf(row string, regions int) string {
	if regions <= 0 {
		regions = 1
	}
	return fmt.Sprintf("region-%04d", hashRow(row)%regions)
}

// InitStoreFiles registers the region store files in HDFS (metadata only)
// so reads succeed. Call once after all RegionServers are added.
func (hb *HBase) InitStoreFiles(ctx context.Context, admin *hdfs.Client, storeFileSize float64) error {
	n := hb.regionCount()
	for i := 0; i < n; i++ {
		file := fmt.Sprintf("/hbase/region-%04d/store", i)
		if err := admin.CreateMetadataOnly(ctx, file, storeFileSize); err != nil {
			return err
		}
	}
	return nil
}

// Client is the HBase client library, embedded in an application process.
type Client struct {
	Proc *cluster.Process
	hb   *HBase

	tpClientProto *tracepoint.Tracepoint
}

// NewClient creates an HBase client inside proc.
func NewClient(proc *cluster.Process, hb *HBase) *Client {
	return &Client{
		Proc:          proc,
		hb:            hb,
		tpClientProto: proc.Define("ClientProtocols"),
	}
}

// Get fetches one row of the given size (10 kB lookups in the paper's
// Hget workload).
func (c *Client) Get(ctx context.Context, row string, size float64) error {
	c.tpClientProto.Here(ctx)
	rs := c.hb.serverFor(row)
	if rs == nil {
		return fmt.Errorf("hbase: no region servers")
	}
	_, err := c.Proc.Call(ctx, rs.Proc, "ClientService.Get",
		OpReq{Row: row, Size: size},
		cluster.Sizes{Request: 150, Response: size})
	return err
}

// Scan streams size bytes starting at row (4 MB scans in the paper's
// Hscan workload).
func (c *Client) Scan(ctx context.Context, row string, size float64) error {
	c.tpClientProto.Here(ctx)
	rs := c.hb.serverFor(row)
	if rs == nil {
		return fmt.Errorf("hbase: no region servers")
	}
	_, err := c.Proc.Call(ctx, rs.Proc, "ClientService.Scan",
		OpReq{Row: row, Size: size},
		cluster.Sizes{Request: 150, Response: size})
	return err
}
