// Tracing: capture causal spans at tracepoint crossings, reconstruct
// each request's DAG — fan-out and fan-in preserved — and print the
// per-query EXPLAIN ANALYZE with measured operator counters.
//
// Span capture rides the same baggage that powers happened-before joins:
// a reserved frontier slot carries (trace id, span id, start time), so
// every crossing knows its causal parents and the elapsed segment time
// without any cross-process clock exchange. Until EnableSpans is called,
// none of this machinery is touched.
//
//	go run ./examples/tracing
package main

import (
	"context"
	"fmt"

	"repro/pivot"
)

func main() {
	pt := pivot.New("media-service")

	// Turn on span capture: crossings on baggage-carrying contexts now
	// record spans, and the frontend reconstructs per-request DAGs.
	builder := pt.EnableSpans(0)

	tpReq := pt.Define("Media.Request", "name")
	tpThumb := pt.Define("Media.Thumbnail", "bytes")
	tpMeta := pt.Define("Media.Metadata", "bytes")
	tpResp := pt.Define("Media.Respond", "status")

	// A query over the same workload: which thumbnail fetches fed each
	// response? EXPLAIN ANALYZE below shows what it cost per operator.
	q, err := pt.Install(`From r In Media.Respond
		Join t In Media.Thumbnail On t -> r
		Select t.bytes`)
	if err != nil {
		panic(err)
	}

	// Each request fans out: thumbnail and metadata fetched on parallel
	// branches, joined back before responding. The reconstructed trace
	// shows exactly this diamond.
	for i := 0; i < 3; i++ {
		ctx := pt.NewRequest(context.Background())
		tpReq.Here(ctx, "video.mp4")
		left, right := pivot.Split(ctx)
		tpThumb.Here(left, 2048+i)
		tpMeta.Here(right, 512)
		ctx = pivot.Join(ctx, left, right)
		tpResp.Here(ctx, 200)
	}
	pt.Flush() // ships span batches and EXPLAIN ANALYZE stats

	fmt.Println("request trees:")
	for _, id := range builder.TraceIDs() {
		fmt.Print(builder.Trace(id).RenderTree())
		fmt.Println()
	}
	fmt.Println("trace summary:")
	fmt.Print(builder.Summary())
	fmt.Println()
	fmt.Print(q.ExplainAnalyze())
}
