package advice

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/tuple"
)

// The emit-op helpers aggOp (GroupBy k, SUM(v)) and rawOp (raw rows) are
// shared with safety_test.go.

// gkey is the encoded group key of a one-string group-by tuple.
func gkey(k string) string {
	return tuple.Tuple{tuple.String(k)}.Key([]int{0})
}

// drainSums folds a drained accumulator's groups into key -> summed value.
func drainSums(t *testing.T, into map[string]int64, acc *Accumulator) {
	t.Helper()
	for _, g := range acc.Groups() {
		if len(g.States) != 1 {
			t.Fatalf("group %q has %d states", g.Key, len(g.States))
		}
		into[g.Key] += g.States[0].Result().Int()
	}
}

func TestShardedConcurrentAddExactness(t *testing.T) {
	const (
		workers = 8
		keys    = 16
		perKey  = 500
	)
	s := NewShardedAccumulator(aggOp(), 0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < keys; k++ {
				key := tuple.String(fmt.Sprintf("k%02d", k))
				for i := 0; i < perKey; i++ {
					s.Add(tuple.Tuple{key, tuple.Int(1)})
				}
			}
		}()
	}
	wg.Wait()
	got := map[string]int64{}
	drainSums(t, got, s.Drain())
	if len(got) != keys {
		t.Fatalf("drained %d groups, want %d", len(got), keys)
	}
	for k, sum := range got {
		if sum != workers*perKey {
			t.Errorf("key %q sum = %d, want %d", k, sum, workers*perKey)
		}
	}
	if !s.Empty() {
		t.Error("accumulator not empty after full drain")
	}
}

func TestShardedDrainConcurrentWithAdds(t *testing.T) {
	const (
		workers = 8
		perW    = 2000
	)
	s := NewShardedAccumulator(aggOp(), 0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				s.Add(tuple.Tuple{tuple.String("k"), tuple.Int(1)})
			}
		}()
	}
	// Drain concurrently with the adders: every tuple must land in exactly
	// one drain (the steal-and-merge swap moves whole shard contents).
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	got := map[string]int64{}
	for {
		select {
		case <-done:
			drainSums(t, got, s.Drain())
			if got[gkey("k")] != workers*perW {
				t.Fatalf("total = %d, want %d (tuples lost or duplicated across drains)",
					got[gkey("k")], workers*perW)
			}
			return
		default:
			drainSums(t, got, s.Drain())
		}
	}
}

func TestShardedDrainPreservesFirstSeenOrder(t *testing.T) {
	s := NewShardedAccumulator(aggOp(), 4)
	const n = 32
	// Adds from distinct goroutines (run to completion one at a time) can
	// land in distinct shards; the drain must still present groups in
	// global first-seen order.
	for i := 0; i < n; i++ {
		done := make(chan struct{})
		i := i
		go func() {
			defer close(done)
			s.Add(tuple.Tuple{tuple.String(fmt.Sprintf("k%02d", i)), tuple.Int(1)})
		}()
		<-done
	}
	groups := s.Drain().Groups()
	if len(groups) != n {
		t.Fatalf("drained %d groups, want %d", len(groups), n)
	}
	for i, g := range groups {
		want := tuple.Tuple{tuple.String(fmt.Sprintf("k%02d", i))}.Key([]int{0})
		if g.Key != want {
			t.Fatalf("group[%d].Key = %q, want %q (first-seen order lost)", i, g.Key, want)
		}
	}
}

func TestShardedRawRowsAndDropAccounting(t *testing.T) {
	s := NewShardedAccumulator(rawOp(), 0)
	s.SetLimits(Limits{MaxRaws: 4})
	const total = 200
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < total/4; i++ {
				s.Add(tuple.Tuple{tuple.String("k"), tuple.Int(int64(i))})
			}
		}()
	}
	wg.Wait()
	kept := len(s.Drain().Raws())
	dropped := s.RawsDropped()
	if int64(kept)+dropped != total {
		t.Fatalf("kept %d + dropped %d != %d offered (drop accounting leaks)",
			kept, dropped, total)
	}
	if dropped == 0 {
		t.Fatalf("MaxRaws=4 per shard kept all %d rows; cap not applied", kept)
	}
	// Counters are cumulative: a second drain must not reset them.
	if got := s.RawsDropped(); got != dropped {
		t.Errorf("RawsDropped changed %d -> %d across reads", dropped, got)
	}
}

func TestShardedGroupOverflowAccounting(t *testing.T) {
	s := NewShardedAccumulator(aggOp(), 2)
	s.SetLimits(Limits{MaxGroups: 2})
	const distinct = 64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < distinct/4; i++ {
				k := fmt.Sprintf("k%02d", w*(distinct/4)+i)
				s.Add(tuple.Tuple{tuple.String(k), tuple.Int(1)})
			}
		}()
	}
	wg.Wait()
	got := map[string]int64{}
	drainSums(t, got, s.Drain())
	if s.GroupsOverflowed() == 0 {
		t.Fatal("MaxGroups=2 never overflowed across 64 distinct keys")
	}
	var total int64
	for _, v := range got {
		total += v
	}
	if total != distinct {
		t.Fatalf("SUM over drained groups (incl. overflow) = %d, want %d", total, distinct)
	}
	overflowKey := OverflowKey
	if _, ok := got[overflowKey]; !ok {
		t.Error("no overflow group in drain despite overflow count > 0")
	}
}

func TestShardedEmptyHintConservative(t *testing.T) {
	s := NewShardedAccumulator(aggOp(), 0)
	if !s.Empty() {
		t.Fatal("fresh accumulator not Empty")
	}
	s.Add(tuple.Tuple{tuple.String("k"), tuple.Int(1)})
	if s.Empty() {
		t.Fatal("Empty() == true while holding a tuple (hint must never under-report)")
	}
	if got := len(s.Drain().Groups()); got != 1 {
		t.Fatalf("drained %d groups, want 1", got)
	}
	if !s.Empty() {
		t.Fatal("not Empty after drain")
	}
}

func TestShardedSingleShardAblation(t *testing.T) {
	s := NewShardedAccumulator(aggOp(), 1)
	if s.Shards() != 1 {
		t.Fatalf("Shards() = %d, want 1", s.Shards())
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Add(tuple.Tuple{tuple.String("k"), tuple.Int(1)})
			}
		}()
	}
	wg.Wait()
	got := map[string]int64{}
	drainSums(t, got, s.Drain())
	if got[gkey("k")] != 4000 {
		t.Fatalf("single-shard sum = %d, want 4000", got[gkey("k")])
	}
}
