// Package yarn implements a simulated YARN container manager: a central
// ResourceManager tracking cluster capacity and per-host NodeManagers that
// launch containers (tasks run as managed goroutines on the container's
// host). MapReduce runs its ApplicationMaster and tasks in YARN containers,
// as in the paper's stack (§6).
package yarn

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/simtime"
	"repro/internal/tracepoint"
)

// DefaultContainersPerNode is each NodeManager's container capacity.
const DefaultContainersPerNode = 8

// ResourceManager allocates containers across NodeManagers.
type ResourceManager struct {
	Proc *cluster.Process

	mu    sync.Mutex
	nodes []*NodeManager
	avail *simtime.Semaphore // cluster-wide container slots
	rr    int

	tpAllocate *tracepoint.Tracepoint
}

// NewResourceManager starts the ResourceManager on a host.
func NewResourceManager(c *cluster.Cluster, host string) *ResourceManager {
	proc := c.Start(host, "ResourceManager")
	rm := &ResourceManager{Proc: proc, avail: c.Env.NewSemaphore(0)}
	rm.tpAllocate = proc.Define("RM.AllocateContainer", "preferredHost", "grantedHost")
	proc.Handle("ApplicationClientProtocol.Allocate", rm.handleAllocate)
	return rm
}

// NodeManager manages containers on one host.
type NodeManager struct {
	Proc *cluster.Process
	rm   *ResourceManager
	free *simtime.Semaphore
	cap  int

	// draining, when set, removes the node from container placement (a
	// rolling restart or decommission); running containers finish.
	draining atomic.Bool

	tpLaunch *tracepoint.Tracepoint
}

// SetDraining marks the node as out of (or back into) container
// placement. The RM skips draining nodes when granting containers.
func (nm *NodeManager) SetDraining(d bool) { nm.draining.Store(d) }

// Draining reports whether the node currently refuses new containers.
func (nm *NodeManager) Draining() bool { return nm.draining.Load() }

// NewNodeManagers is the bulk-spawn path: one NodeManager per host with
// the same capacity, in order.
func NewNodeManagers(c *cluster.Cluster, hosts []string, rm *ResourceManager, capacity int) []*NodeManager {
	out := make([]*NodeManager, len(hosts))
	for i, h := range hosts {
		out[i] = NewNodeManager(c, h, rm, capacity)
	}
	return out
}

// NewNodeManager starts a NodeManager with the given container capacity on
// a host and registers it with the ResourceManager.
func NewNodeManager(c *cluster.Cluster, host string, rm *ResourceManager, capacity int) *NodeManager {
	if capacity <= 0 {
		capacity = DefaultContainersPerNode
	}
	proc := c.Start(host, "NodeManager")
	nm := &NodeManager{Proc: proc, rm: rm, free: c.Env.NewSemaphore(capacity), cap: capacity}
	nm.tpLaunch = proc.Define("NM.LaunchContainer", "app")
	rm.mu.Lock()
	rm.nodes = append(rm.nodes, nm)
	rm.mu.Unlock()
	for i := 0; i < capacity; i++ {
		rm.avail.Release()
	}
	return nm
}

// AllocateReq asks for one container, preferably on PreferredHost (data
// locality).
type AllocateReq struct {
	App           string
	PreferredHost string
}

// Container is a granted execution slot on a host.
type Container struct {
	App  string
	Host string
	nm   *NodeManager
}

func (rm *ResourceManager) handleAllocate(ctx context.Context, req any) (any, error) {
	r := req.(AllocateReq)
	// Wait for cluster capacity, then pick a node: preferred host if it
	// has a free slot, else round-robin over nodes with capacity. The
	// capacity semaphore can admit us while every placeable slot sits on
	// a draining node (its slots still count until it re-registers), so
	// placement retries on a short backoff instead of failing the job.
	const maxTries = 1000
	for try := 0; try < maxTries; try++ {
		rm.avail.Acquire()
		rm.mu.Lock()
		var pick *NodeManager
		for _, nm := range rm.nodes {
			if nm.Proc.Info.Host == r.PreferredHost && nm.tryReserve() {
				pick = nm
				break
			}
		}
		for i := 0; pick == nil && i < len(rm.nodes); i++ {
			rm.rr = (rm.rr + 1) % len(rm.nodes)
			if rm.nodes[rm.rr].tryReserve() {
				pick = rm.nodes[rm.rr]
			}
		}
		rm.mu.Unlock()
		if pick != nil {
			rm.tpAllocate.Here(ctx, r.PreferredHost, pick.Proc.Info.Host)
			return Container{App: r.App, Host: pick.Proc.Info.Host, nm: pick}, nil
		}
		rm.avail.Release()
		rm.Proc.C.Env.Sleep(time.Millisecond)
	}
	return nil, fmt.Errorf("yarn: no container available despite capacity")
}

// tryReserve takes a slot if one is immediately free and the node is
// accepting containers.
func (nm *NodeManager) tryReserve() bool {
	if nm.draining.Load() {
		return false
	}
	return nm.free.TryAcquire()
}

// Release returns the container's slot to its NodeManager.
func (c Container) Release() {
	c.nm.free.Release()
	c.nm.rm.avail.Release()
}

// Run executes fn in the container as a managed goroutine inside proc
// (the task's process on the container host), with a branch of the request
// baggage. The returned join function waits for completion and merges the
// baggage branch back.
func (c Container) Run(ctx context.Context, proc *cluster.Process, fn func(ctx context.Context)) (join func()) {
	c.nm.tpLaunch.Here(ctx, c.App)
	return proc.Go(ctx, func(branchCtx context.Context) {
		fn(proc.In(branchCtx))
	})
}

// Allocate is the client call requesting a container from the RM.
func Allocate(ctx context.Context, from *cluster.Process, rm *ResourceManager, app, preferredHost string) (Container, error) {
	resp, err := from.Call(ctx, rm.Proc, "ApplicationClientProtocol.Allocate",
		AllocateReq{App: app, PreferredHost: preferredHost},
		cluster.Sizes{Request: 300, Response: 300})
	if err != nil {
		return Container{}, err
	}
	return resp.(Container), nil
}
