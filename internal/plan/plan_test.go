package plan

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/advice"
	"repro/internal/baggage"
	"repro/internal/query"
	"repro/internal/tracepoint"
	"repro/internal/tuple"
)

// harness compiles a query, weaves its advice, and accumulates emitted
// tuples — a miniature agent for exercising plans end to end.
type harness struct {
	t    *testing.T
	reg  *tracepoint.Registry
	plan *Plan
	acc  *advice.Accumulator
}

func (h *harness) EmitTuple(p *advice.Program, w tuple.Tuple) { h.acc.Add(w) }

func install(t *testing.T, reg *tracepoint.Registry, named map[string]*query.Query, text string, opts Options) *harness {
	t.Helper()
	q, err := query.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	q.Name = "q"
	p, err := Compile(q, reg, named, opts)
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{t: t, reg: reg, plan: p}
	h.acc = advice.NewAccumulator(p.Emit.Emit)
	for _, prog := range p.Programs {
		if err := reg.Weave(prog.Tracepoint, &advice.Advice{Prog: prog, Emitter: h}); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

// newRequest returns a context representing one request execution at the
// given host/process, with fresh baggage.
func newRequest(host, proc string) context.Context {
	ctx := tracepoint.WithProc(context.Background(), tracepoint.ProcInfo{
		Host: host, ProcName: proc, ProcID: 1,
	})
	return baggage.NewContext(ctx, baggage.New())
}

// hop simulates the request moving to another process: identity changes,
// baggage is serialized and deserialized as it would cross the network.
func hop(ctx context.Context, host, proc string) context.Context {
	bag := baggage.Deserialize(baggage.FromContext(ctx).Serialize())
	ctx = tracepoint.WithProc(ctx, tracepoint.ProcInfo{Host: host, ProcName: proc, ProcID: 2})
	return baggage.NewContext(ctx, bag)
}

func q2Registry() *tracepoint.Registry {
	reg := tracepoint.NewRegistry()
	reg.Define("DataNodeMetrics.incrBytesRead", "delta")
	reg.Define("ClientProtocols")
	return reg
}

func TestQ1LocalAggregation(t *testing.T) {
	reg := q2Registry()
	h := install(t, reg, nil,
		`From incr In DataNodeMetrics.incrBytesRead
		 GroupBy incr.host
		 Select incr.host, SUM(incr.delta)`, Optimized)

	tp := reg.Lookup("DataNodeMetrics.incrBytesRead")
	for _, c := range []struct {
		host  string
		delta int64
	}{{"A", 10}, {"B", 5}, {"A", 7}} {
		tp.Here(newRequest(c.host, "DataNode"), c.delta)
	}
	rows := h.acc.Rows()
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0].Str() != "A" || rows[0][1].Int() != 17 {
		t.Errorf("row A = %v", rows[0])
	}
	if rows[1][0].Str() != "B" || rows[1][1].Int() != 5 {
		t.Errorf("row B = %v", rows[1])
	}
}

func TestQ2HappenedBeforeJoin(t *testing.T) {
	reg := q2Registry()
	h := install(t, reg, nil,
		`From incr In DataNodeMetrics.incrBytesRead
		 Join cl In First(ClientProtocols) On cl -> incr
		 GroupBy cl.procName
		 Select cl.procName, SUM(incr.delta)`, Optimized)

	cl := reg.Lookup("ClientProtocols")
	incr := reg.Lookup("DataNodeMetrics.incrBytesRead")

	// Request 1: HGET client reads 4096 + 1024 bytes.
	ctx := newRequest("client-1", "HGET")
	cl.Here(ctx)
	ctx = hop(ctx, "dn-1", "DataNode")
	incr.Here(ctx, 4096)
	incr.Here(ctx, 1024)

	// Request 2: MRSORT10G reads 100 bytes; passes two client protocols —
	// First keeps the initial procName.
	ctx = newRequest("client-2", "MRSORT10G")
	cl.Here(ctx)
	ctx2 := hop(ctx, "client-2", "SomeOtherProto")
	cl.Here(ctx2)
	ctx2 = hop(ctx2, "dn-2", "DataNode")
	incr.Here(ctx2, 100)

	// An execution that never passed a client protocol contributes nothing.
	incr.Here(newRequest("dn-3", "DataNode"), 999)

	rows := h.acc.Rows()
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0].Str() != "HGET" || rows[0][1].Int() != 5120 {
		t.Errorf("HGET row = %v", rows[0])
	}
	if rows[1][0].Str() != "MRSORT10G" || rows[1][1].Int() != 100 {
		t.Errorf("MRSORT10G row = %v", rows[1])
	}
}

func TestQ2AdviceMatchesPaperCompilation(t *testing.T) {
	// §3: A1 observes and packs procName; A2 unpacks procName, observes
	// delta, and emits.
	reg := q2Registry()
	h := install(t, reg, nil,
		`From incr In DataNodeMetrics.incrBytesRead
		 Join cl In First(ClientProtocols) On cl -> incr
		 GroupBy cl.procName
		 Select cl.procName, SUM(incr.delta)`, Optimized)

	if len(h.plan.Programs) != 2 {
		t.Fatalf("programs = %d, want 2", len(h.plan.Programs))
	}
	a1, a2 := h.plan.Programs[0], h.plan.Programs[1]
	if a1.Tracepoint != "ClientProtocols" || a1.Pack == nil || a1.Emit != nil {
		t.Errorf("A1 = %v", a1)
	}
	if a1.Pack.Spec.Kind != baggage.First {
		t.Errorf("A1 pack kind = %v, want FIRST", a1.Pack.Spec.Kind)
	}
	if a2.Tracepoint != "DataNodeMetrics.incrBytesRead" || a2.Emit == nil || a2.Pack != nil {
		t.Errorf("A2 = %v", a2)
	}
	explain := h.plan.Explain()
	for _, want := range []string{"PACK-FIRST cl.procName", "UNPACK cl.procName", "OBSERVE incr.delta"} {
		if !strings.Contains(explain, want) {
			t.Errorf("Explain missing %q:\n%s", want, explain)
		}
	}
}

func TestQ7ChainedJoinsWithFilter(t *testing.T) {
	reg := tracepoint.NewRegistry()
	reg.Define("DN.DataTransferProtocol")
	reg.Define("NN.GetBlockLocations", "replicas")
	reg.Define("StressTest.DoNextOp")
	h := install(t, reg, nil,
		`From DNop In DN.DataTransferProtocol
		 Join getloc In NN.GetBlockLocations On getloc -> DNop
		 Join st In StressTest.DoNextOp On st -> getloc
		 Where st.host != DNop.host
		 GroupBy DNop.host, getloc.replicas
		 Select DNop.host, getloc.replicas, COUNT`, Optimized)

	st := reg.Lookup("StressTest.DoNextOp")
	nn := reg.Lookup("NN.GetBlockLocations")
	dn := reg.Lookup("DN.DataTransferProtocol")

	run := func(client, replicas, chosen string) {
		ctx := newRequest(client, "StressTest")
		st.Here(ctx)
		ctx = hop(ctx, "namenode", "NameNode")
		nn.Here(ctx, replicas)
		ctx = hop(ctx, chosen, "DataNode")
		dn.Here(ctx)
	}
	run("A", "A,B,C", "A") // local read: filtered out (st.host == DNop.host)
	run("A", "B,C,D", "B") // non-local: kept
	run("A", "B,C,D", "B") // non-local: kept
	run("D", "A,B,C", "A") // non-local: kept

	rows := h.acc.Rows()
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0].Str() != "B" || rows[0][1].Str() != "B,C,D" || rows[0][2].Int() != 2 {
		t.Errorf("row 0 = %v", rows[0])
	}
	if rows[1][0].Str() != "A" || rows[1][1].Str() != "A,B,C" || rows[1][2].Int() != 1 {
		t.Errorf("row 1 = %v", rows[1])
	}
}

func TestQ7FilterPushdownStopsAtDNop(t *testing.T) {
	// st.host != DNop.host references both ends of the chain, so it can
	// only run at the final tracepoint.
	reg := tracepoint.NewRegistry()
	reg.Define("DN.DataTransferProtocol")
	reg.Define("NN.GetBlockLocations", "replicas")
	reg.Define("StressTest.DoNextOp")
	h := install(t, reg, nil,
		`From DNop In DN.DataTransferProtocol
		 Join getloc In NN.GetBlockLocations On getloc -> DNop
		 Join st In StressTest.DoNextOp On st -> getloc
		 Where st.host != DNop.host
		 GroupBy DNop.host
		 Select DNop.host, COUNT`, Optimized)
	final := h.plan.Emit
	if len(final.Filters) != 1 {
		t.Fatalf("final filters = %d, want 1", len(final.Filters))
	}
	for _, prog := range h.plan.Programs {
		if prog != final && len(prog.Filters) != 0 {
			t.Errorf("filter wrongly placed at %s", prog.Tracepoint)
		}
	}
}

func TestFilterPushedToSourceWhenLocal(t *testing.T) {
	// A predicate over only the joined source runs at that source, so
	// non-matching tuples are never packed.
	reg := tracepoint.NewRegistry()
	reg.Define("Final")
	reg.Define("Src", "size")
	h := install(t, reg, nil,
		`From f In Final
		 Join s In Src On s -> f
		 Where s.size < 10
		 GroupBy s.size
		 Select s.size, COUNT`, Optimized)

	src := h.plan.Programs[0]
	if src.Tracepoint != "Src" || len(src.Filters) != 1 {
		t.Fatalf("source program filters = %+v", src)
	}

	srcTp := reg.Lookup("Src")
	finalTp := reg.Lookup("Final")
	ctx := newRequest("h", "p")
	srcTp.Here(ctx, 5)
	srcTp.Here(ctx, 50) // filtered at source: never packed
	if got := baggage.FromContext(ctx).TupleCount(); got != 1 {
		t.Errorf("packed tuples = %d, want 1 (filter not pushed?)", got)
	}
	finalTp.Here(ctx)
	rows := h.acc.Rows()
	if len(rows) != 1 || rows[0][0].Int() != 5 || rows[0][1].Int() != 1 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestAggregationPushdown(t *testing.T) {
	// SUM over a joined source's field becomes pack-time aggregation:
	// many source events collapse to one packed group per request.
	reg := tracepoint.NewRegistry()
	reg.Define("Final")
	reg.Define("Disk", "bytes")
	h := install(t, reg, nil,
		`From f In Final
		 Join d In Disk On d -> f
		 GroupBy f.host
		 Select f.host, SUM(d.bytes)`, Optimized)

	src := h.plan.Programs[0]
	if src.Pack.Spec.Kind != baggage.Agg {
		t.Fatalf("pack kind = %v, want AGG", src.Pack.Spec.Kind)
	}

	disk := reg.Lookup("Disk")
	final := reg.Lookup("Final")
	ctx := newRequest("h1", "p")
	for i := 0; i < 100; i++ {
		disk.Here(ctx, 10)
	}
	// Despite 100 disk events, only one aggregated tuple is in baggage.
	if got := baggage.FromContext(ctx).TupleCount(); got != 1 {
		t.Errorf("packed tuples = %d, want 1", got)
	}
	final.Here(ctx)

	// Second request on the same host adds more.
	ctx = newRequest("h1", "p")
	disk.Here(ctx, 7)
	final.Here(ctx)

	rows := h.acc.Rows()
	if len(rows) != 1 || rows[0][0].Str() != "h1" || rows[0][1].Int() != 1007 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestCountPushdownUsesSumCombiner(t *testing.T) {
	reg := tracepoint.NewRegistry()
	reg.Define("Final")
	reg.Define("Disk", "bytes")
	h := install(t, reg, nil,
		`From f In Final
		 Join d In Disk On d -> f
		 GroupBy f.host
		 Select f.host, COUNT(d.bytes)`, Optimized)

	disk := reg.Lookup("Disk")
	final := reg.Lookup("Final")
	for r := 0; r < 3; r++ {
		ctx := newRequest("h1", "p")
		for i := 0; i < 5; i++ {
			disk.Here(ctx, 1)
		}
		final.Here(ctx)
	}
	rows := h.acc.Rows()
	if len(rows) != 1 || rows[0][1].Int() != 15 {
		t.Fatalf("rows = %v, want count 15", rows)
	}
}

// pushedPackKinds returns the pack set kinds of the plan's non-emitting
// programs, to observe whether aggregation push-down happened.
func pushedPackKinds(p *Plan) []baggage.SetKind {
	var out []baggage.SetKind
	for _, prog := range p.Programs {
		if prog.Pack != nil {
			out = append(out, prog.Pack.Spec.Kind)
		}
	}
	return out
}

func TestMixedAggregationBlocksPushdown(t *testing.T) {
	// A pushed aggregate collapses the alias's tuple multiplicity, which
	// corrupts any aggregate that stays behind — here the bare COUNT
	// counts joined rows, so d must keep packing raw tuples.
	reg := tracepoint.NewRegistry()
	reg.Define("Final")
	reg.Define("Disk", "bytes")
	h := install(t, reg, nil,
		`From f In Final
		 Join d In Disk On d -> f
		 GroupBy f.host
		 Select f.host, SUM(d.bytes), COUNT`, Optimized)
	for _, k := range pushedPackKinds(h.plan) {
		if k == baggage.Agg {
			t.Fatalf("mixed aggregation must not push down; got AGG pack")
		}
	}

	ctx := newRequest("h1", "p")
	disk := reg.Lookup("Disk")
	final := reg.Lookup("Final")
	disk.Here(ctx, 10)
	disk.Here(ctx, 5)
	final.Here(ctx)
	rows := h.acc.Rows()
	if len(rows) != 1 || rows[0][1].Int() != 15 || rows[0][2].Int() != 2 {
		t.Fatalf("rows = %v, want [h1 15 2]", rows)
	}
}

func TestPushdownOntoTwoAliasesDisabled(t *testing.T) {
	// Two aggregates over two different joined aliases: pushing either
	// collapses the other's cartesian multiplier, so neither may push.
	reg := tracepoint.NewRegistry()
	reg.Define("Final")
	reg.Define("Disk", "bytes")
	reg.Define("Net", "pkts")
	h := install(t, reg, nil,
		`From f In Final
		 Join d In Disk On d -> f
		 Join n In Net On n -> f
		 Select SUM(d.bytes), SUM(n.pkts)`, Optimized)
	for _, k := range pushedPackKinds(h.plan) {
		if k == baggage.Agg {
			t.Fatalf("cross-alias aggregation must not push down; got AGG pack")
		}
	}

	// Two disk and three net events: the cartesian product means each
	// disk tuple is counted 3 times and each net tuple twice.
	ctx := newRequest("h1", "p")
	disk, net, final := reg.Lookup("Disk"), reg.Lookup("Net"), reg.Lookup("Final")
	disk.Here(ctx, 10)
	disk.Here(ctx, 1)
	net.Here(ctx, 100)
	net.Here(ctx, 20)
	net.Here(ctx, 3)
	final.Here(ctx)
	rows := h.acc.Rows()
	if len(rows) != 1 || rows[0][0].Int() != 3*11 || rows[0][1].Int() != 2*123 {
		t.Fatalf("rows = %v, want [33 246]", rows)
	}
}

func TestAllAggregatesOnOneAliasStillPush(t *testing.T) {
	// The guard must not cost the common case: every aggregate on the
	// same directly-joined alias still packs partial aggregates.
	reg := tracepoint.NewRegistry()
	reg.Define("Final")
	reg.Define("Disk", "bytes")
	h := install(t, reg, nil,
		`From f In Final
		 Join d In Disk On d -> f
		 GroupBy f.host
		 Select f.host, SUM(d.bytes), MAX(d.bytes)`, Optimized)
	pushed := false
	for _, k := range pushedPackKinds(h.plan) {
		if k == baggage.Agg {
			pushed = true
		}
	}
	if !pushed {
		t.Fatalf("same-alias aggregates should still push down")
	}

	ctx := newRequest("h1", "p")
	disk, final := reg.Lookup("Disk"), reg.Lookup("Final")
	disk.Here(ctx, 10)
	disk.Here(ctx, 5)
	final.Here(ctx)
	rows := h.acc.Rows()
	if len(rows) != 1 || rows[0][1].Int() != 15 || rows[0][2].Int() != 10 {
		t.Fatalf("rows = %v, want [h1 15 10]", rows)
	}
}

func TestQ8MostRecentAndComputedLatency(t *testing.T) {
	reg := tracepoint.NewRegistry()
	reg.Define("SendResponse")
	reg.Define("ReceiveRequest")
	h := install(t, reg, nil,
		`From response In SendResponse
		 Join request In MostRecent(ReceiveRequest) On request -> response
		 Select response.time - request.time`, Optimized)

	recv := reg.Lookup("ReceiveRequest")
	send := reg.Lookup("SendResponse")

	ctx := newRequest("h", "server")
	ctx = tracepoint.WithClock(ctx, testClock2(100))
	recv.Here(ctx)
	ctx = tracepoint.WithClock(ctx, testClock2(250))
	recv.Here(ctx) // most recent wins
	ctx = tracepoint.WithClock(ctx, testClock2(400))
	send.Here(ctx)

	rows := h.acc.Rows()
	if len(rows) != 1 || rows[0][0].Int() != 150 {
		t.Fatalf("rows = %v, want latency 150", rows)
	}
}

func TestQ9SubqueryJoin(t *testing.T) {
	reg := tracepoint.NewRegistry()
	reg.Define("SendResponse")
	reg.Define("ReceiveRequest")
	reg.Define("JobComplete", "id")

	q8, err := query.Parse(`From response In SendResponse
		Join request In MostRecent(ReceiveRequest) On request -> response
		Select response.time - request.time`)
	if err != nil {
		t.Fatal(err)
	}
	q8.Name = "Q8"
	named := map[string]*query.Query{"Q8": q8}

	h := install(t, reg, named,
		`From job In JobComplete
		 Join latencyMeasurement In Q8 On latencyMeasurement -> end
		 GroupBy job.id
		 Select job.id, AVERAGE(latencyMeasurement)`, Optimized)

	recv := reg.Lookup("ReceiveRequest")
	send := reg.Lookup("SendResponse")
	job := reg.Lookup("JobComplete")

	ctx := newRequest("h", "worker")
	// Two request/response pairs with latencies 100 and 300.
	ctx2 := tracepoint.WithClock(ctx, testClock2(1000))
	recv.Here(ctx2)
	ctx2 = tracepoint.WithClock(ctx, testClock2(1100))
	send.Here(ctx2)
	ctx2 = tracepoint.WithClock(ctx, testClock2(2000))
	recv.Here(ctx2)
	ctx2 = tracepoint.WithClock(ctx, testClock2(2300))
	send.Here(ctx2)
	job.Here(ctx2, "job-7")

	rows := h.acc.Rows()
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0].Str() != "job-7" || rows[0][1].Float() != 200 {
		t.Fatalf("row = %v, want (job-7, 200)", rows[0])
	}
}

func TestOptimizedAndUnoptimizedAgree(t *testing.T) {
	text := `From DNop In DN.DataTransferProtocol
	  Join getloc In NN.GetBlockLocations On getloc -> DNop
	  Join st In StressTest.DoNextOp On st -> getloc
	  Where st.host != DNop.host
	  GroupBy DNop.host
	  Select DNop.host, COUNT`

	var results [2][]tuple.Tuple
	var packCounts [2]int
	for mode, opts := range []Options{{Optimize: true}, {Optimize: false}} {
		reg := tracepoint.NewRegistry()
		reg.Define("DN.DataTransferProtocol")
		reg.Define("NN.GetBlockLocations", "replicas")
		reg.Define("StressTest.DoNextOp")
		h := install(t, reg, nil, text, opts)

		st := reg.Lookup("StressTest.DoNextOp")
		nn := reg.Lookup("NN.GetBlockLocations")
		dn := reg.Lookup("DN.DataTransferProtocol")
		for _, c := range []struct{ client, chosen string }{
			{"A", "A"}, {"A", "B"}, {"C", "B"}, {"D", "A"},
		} {
			ctx := newRequest(c.client, "StressTest")
			st.Here(ctx)
			ctx = hop(ctx, "namenode", "NameNode")
			nn.Here(ctx, "r1,r2,r3")
			packCounts[mode] += baggage.FromContext(ctx).ByteSize()
			ctx = hop(ctx, c.chosen, "DataNode")
			dn.Here(ctx)
		}
		results[mode] = h.acc.Rows()
	}
	if len(results[0]) != len(results[1]) {
		t.Fatalf("row counts differ: %v vs %v", results[0], results[1])
	}
	for i := range results[0] {
		if !results[0][i].Equal(results[1][i]) {
			t.Errorf("row %d differs: %v vs %v", i, results[0][i], results[1][i])
		}
	}
	if packCounts[0] >= packCounts[1] {
		t.Errorf("optimized baggage (%d B) should be smaller than unoptimized (%d B)",
			packCounts[0], packCounts[1])
	}
}

func TestUnionFromWeavesBothTracepoints(t *testing.T) {
	reg := tracepoint.NewRegistry()
	reg.Define("DataRPCs", "size")
	reg.Define("ControlRPCs", "size")
	h := install(t, reg, nil,
		`From e In DataRPCs, ControlRPCs
		 GroupBy e.tracepoint
		 Select e.tracepoint, SUM(e.size)`, Optimized)

	reg.Lookup("DataRPCs").Here(newRequest("h", "p"), 10)
	reg.Lookup("ControlRPCs").Here(newRequest("h", "p"), 3)
	reg.Lookup("DataRPCs").Here(newRequest("h", "p"), 5)

	rows := h.acc.Rows()
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0].Str() != "DataRPCs" || rows[0][1].Int() != 15 {
		t.Errorf("row 0 = %v", rows[0])
	}
	if rows[1][0].Str() != "ControlRPCs" || rows[1][1].Int() != 3 {
		t.Errorf("row 1 = %v", rows[1])
	}
}

func TestFig3HappenedBeforeJoinSemantics(t *testing.T) {
	// Figure 3 of the paper: an execution triggers A, B, C; query A->B
	// joins every A tuple to every later B tuple, etc. We verify the
	// result multiplicities via COUNT with an A->B style join.
	reg := tracepoint.NewRegistry()
	reg.Define("A")
	reg.Define("B")
	h := install(t, reg, nil,
		`From b In B
		 Join a In A On a -> b
		 GroupBy a.time, b.time
		 Select a.time, b.time, COUNT`, Optimized)

	a := reg.Lookup("A")
	b := reg.Lookup("B")
	// Execution a1 a2 b1 a3 b2 (as in Fig 3's left branch, simplified):
	// pairs (a1,b1) (a2,b1) (a1,b2) (a2,b2) (a3,b2).
	ctx := newRequest("h", "p")
	at := func(n int64) context.Context { return tracepoint.WithClock(ctx, testClock2(n)) }
	a.Here(at(1))
	a.Here(at(2))
	b.Here(at(3))
	a.Here(at(4))
	b.Here(at(5))

	rows := h.acc.Rows()
	if len(rows) != 5 {
		t.Fatalf("rows = %v, want 5 happened-before pairs", rows)
	}
	pairs := map[[2]int64]bool{}
	for _, r := range rows {
		pairs[[2]int64{r[0].Int(), r[1].Int()}] = true
		if r[2].Int() != 1 {
			t.Errorf("pair %v count = %d", r, r[2].Int())
		}
	}
	for _, want := range [][2]int64{{1, 3}, {2, 3}, {1, 5}, {2, 5}, {4, 5}} {
		if !pairs[want] {
			t.Errorf("missing pair %v", want)
		}
	}
}

type testClock2 int64

func (c testClock2) Now() (d time.Duration) { return time.Duration(c) }
