// Package yarn implements a simulated YARN container manager: a central
// ResourceManager tracking cluster capacity and per-host NodeManagers that
// launch containers (tasks run as managed goroutines on the container's
// host). MapReduce runs its ApplicationMaster and tasks in YARN containers,
// as in the paper's stack (§6).
package yarn

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/cluster"
	"repro/internal/simtime"
	"repro/internal/tracepoint"
)

// DefaultContainersPerNode is each NodeManager's container capacity.
const DefaultContainersPerNode = 8

// ResourceManager allocates containers across NodeManagers.
type ResourceManager struct {
	Proc *cluster.Process

	mu    sync.Mutex
	nodes []*NodeManager
	avail *simtime.Semaphore // cluster-wide container slots
	rr    int

	tpAllocate *tracepoint.Tracepoint
}

// NewResourceManager starts the ResourceManager on a host.
func NewResourceManager(c *cluster.Cluster, host string) *ResourceManager {
	proc := c.Start(host, "ResourceManager")
	rm := &ResourceManager{Proc: proc, avail: c.Env.NewSemaphore(0)}
	rm.tpAllocate = proc.Define("RM.AllocateContainer", "preferredHost", "grantedHost")
	proc.Handle("ApplicationClientProtocol.Allocate", rm.handleAllocate)
	return rm
}

// NodeManager manages containers on one host.
type NodeManager struct {
	Proc *cluster.Process
	rm   *ResourceManager
	free *simtime.Semaphore
	cap  int

	tpLaunch *tracepoint.Tracepoint
}

// NewNodeManager starts a NodeManager with the given container capacity on
// a host and registers it with the ResourceManager.
func NewNodeManager(c *cluster.Cluster, host string, rm *ResourceManager, capacity int) *NodeManager {
	if capacity <= 0 {
		capacity = DefaultContainersPerNode
	}
	proc := c.Start(host, "NodeManager")
	nm := &NodeManager{Proc: proc, rm: rm, free: c.Env.NewSemaphore(capacity), cap: capacity}
	nm.tpLaunch = proc.Define("NM.LaunchContainer", "app")
	rm.mu.Lock()
	rm.nodes = append(rm.nodes, nm)
	rm.mu.Unlock()
	for i := 0; i < capacity; i++ {
		rm.avail.Release()
	}
	return nm
}

// AllocateReq asks for one container, preferably on PreferredHost (data
// locality).
type AllocateReq struct {
	App           string
	PreferredHost string
}

// Container is a granted execution slot on a host.
type Container struct {
	App  string
	Host string
	nm   *NodeManager
}

func (rm *ResourceManager) handleAllocate(ctx context.Context, req any) (any, error) {
	r := req.(AllocateReq)
	// Wait for cluster capacity, then pick a node: preferred host if it
	// has a free slot, else round-robin over nodes with capacity.
	rm.avail.Acquire()
	rm.mu.Lock()
	var pick *NodeManager
	for _, nm := range rm.nodes {
		if nm.Proc.Info.Host == r.PreferredHost && nm.tryReserve() {
			pick = nm
			break
		}
	}
	for i := 0; pick == nil && i < len(rm.nodes); i++ {
		rm.rr = (rm.rr + 1) % len(rm.nodes)
		if rm.nodes[rm.rr].tryReserve() {
			pick = rm.nodes[rm.rr]
		}
	}
	rm.mu.Unlock()
	if pick == nil {
		// Capacity semaphore said a slot exists; racing releases make this
		// transient. Retry by failing upward — callers retry.
		rm.avail.Release()
		return nil, fmt.Errorf("yarn: no container available despite capacity")
	}
	rm.tpAllocate.Here(ctx, r.PreferredHost, pick.Proc.Info.Host)
	return Container{App: r.App, Host: pick.Proc.Info.Host, nm: pick}, nil
}

// tryReserve takes a slot if one is immediately free.
func (nm *NodeManager) tryReserve() bool {
	return nm.free.TryAcquire()
}

// Release returns the container's slot to its NodeManager.
func (c Container) Release() {
	c.nm.free.Release()
	c.nm.rm.avail.Release()
}

// Run executes fn in the container as a managed goroutine inside proc
// (the task's process on the container host), with a branch of the request
// baggage. The returned join function waits for completion and merges the
// baggage branch back.
func (c Container) Run(ctx context.Context, proc *cluster.Process, fn func(ctx context.Context)) (join func()) {
	c.nm.tpLaunch.Here(ctx, c.App)
	return proc.Go(ctx, func(branchCtx context.Context) {
		fn(proc.In(branchCtx))
	})
}

// Allocate is the client call requesting a container from the RM.
func Allocate(ctx context.Context, from *cluster.Process, rm *ResourceManager, app, preferredHost string) (Container, error) {
	resp, err := from.Call(ctx, rm.Proc, "ApplicationClientProtocol.Allocate",
		AllocateReq{App: app, PreferredHost: preferredHost},
		cluster.Sizes{Request: 300, Response: 300})
	if err != nil {
		return Container{}, err
	}
	return resp.(Container), nil
}
