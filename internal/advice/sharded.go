package advice

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/tuple"
)

// ShardedAccumulator stripes an Accumulator across GOMAXPROCS-many shards
// so concurrent tracepoint fires on different goroutines never contend on
// one mutex or one group map. Each shard is a full Accumulator behind its
// own cache-line-padded lock; Drain steals every shard's contents and
// merges them into a single unbounded accumulator (merge-on-flush).
//
// The striping preserves exact aggregation semantics because partial
// aggregate states merge associatively and commutatively (see package agg):
// which shard a tuple folds into only changes where its partial state
// lives between flushes, never the merged result. Global first-seen group
// order is preserved across shards via a shared creation-sequence stamp.
//
// Limits semantics: each shard carries the full configured Limits, so
// between flushes the sharded accumulator can hold up to shards×MaxGroups
// groups and shards×MaxRaws raw rows. Drop counters remain exact — every
// row a shard evicts is counted, and the counts survive Drain.
type ShardedAccumulator struct {
	Op     *EmitOp
	limits Limits
	shards []accShard
	hints  sync.Pool     // *shardHint; per-P private slots give shard affinity
	next   atomic.Uint64 // round-robin assignment for fresh hints
	seq    atomic.Int64  // shared group-creation sequence across shards

	// pending over-approximates the number of added-but-undrained tuples:
	// incremented before an Add lands, decremented by Drain for the adds it
	// stole. It can read >0 for an empty accumulator (an Add in flight),
	// never 0 for one holding data — Empty() is a conservative fast path.
	pending atomic.Int64

	// Eviction accounting folded in from drained shard accumulators;
	// cumulative across Drains like Accumulator's counters are across
	// Resets.
	rawsDropped      atomic.Int64
	groupsOverflowed atomic.Int64
}

// accShard pads each shard's lock and accumulator pointer out to its own
// cache-line neighborhood (two 64-byte lines, to defeat the adjacent-line
// prefetcher) so shards written by different cores never false-share.
type accShard struct {
	mu   sync.Mutex
	acc  *Accumulator
	adds int64 // tuples folded into acc since it was last stolen
	_    [104]byte
}

// shardHint is the pooled per-P affinity token: sync.Pool's private slots
// are per-P, so a goroutine usually gets back the hint it (or the last
// goroutine on its P) used, steering repeat fires to the same shard
// without runtime internals.
type shardHint struct{ idx int }

// NewShardedAccumulator returns an empty sharded accumulator for op with
// nshards shards; nshards <= 0 selects GOMAXPROCS. One shard degenerates
// to a mutex-guarded Accumulator (the "sharded off" ablation).
func NewShardedAccumulator(op *EmitOp, nshards int) *ShardedAccumulator {
	if nshards <= 0 {
		nshards = runtime.GOMAXPROCS(0)
	}
	s := &ShardedAccumulator{Op: op, shards: make([]accShard, nshards)}
	for i := range s.shards {
		s.shards[i].acc = s.newShardAcc()
	}
	return s
}

func (s *ShardedAccumulator) newShardAcc() *Accumulator {
	a := NewAccumulator(s.Op)
	a.SetLimits(s.limits)
	a.SetSeqSource(&s.seq)
	return a
}

// Shards returns the shard count.
func (s *ShardedAccumulator) Shards() int { return len(s.shards) }

// SetLimits replaces the per-shard limits (zero value = defaults). Callers
// set limits once, before the accumulator is shared with concurrent
// adders.
func (s *ShardedAccumulator) SetLimits(l Limits) {
	s.limits = l
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.acc.SetLimits(l)
		sh.mu.Unlock()
	}
}

// pick selects the caller's shard: the pooled hint's shard when one is
// available (per-P affinity), else a fresh round-robin assignment.
func (s *ShardedAccumulator) pick() *accShard {
	if len(s.shards) == 1 {
		return &s.shards[0]
	}
	h, _ := s.hints.Get().(*shardHint)
	if h == nil {
		h = &shardHint{idx: int(s.next.Add(1)-1) % len(s.shards)}
	}
	sh := &s.shards[h.idx]
	s.hints.Put(h)
	return sh
}

// Add folds one emitted working tuple into the caller's shard. Safe for
// concurrent use.
func (s *ShardedAccumulator) Add(w tuple.Tuple) { s.AddWeighted(w, 1) }

// AddWeighted folds one emitted working tuple with a sampling weight
// into the caller's shard. Safe for concurrent use.
func (s *ShardedAccumulator) AddWeighted(w tuple.Tuple, weight float64) {
	s.pending.Add(1)
	sh := s.pick()
	sh.mu.Lock()
	sh.acc.AddWeighted(w, weight)
	sh.adds++
	sh.mu.Unlock()
}

// Empty reports whether the accumulator definitely holds no data. It is a
// conservative hint: a false result may race with an in-flight Add, so
// callers that act on non-emptiness must re-check the drained contents.
func (s *ShardedAccumulator) Empty() bool { return s.pending.Load() == 0 }

// Drain steals every shard's accumulator — each swap holds that shard's
// lock only long enough to exchange a pointer — and merges the stolen
// contents, outside all locks, into one unbounded Accumulator in global
// first-seen group order. Concurrent Adds land either in a stolen
// accumulator (this drain) or a fresh one (the next); no tuple is lost or
// double-drained.
func (s *ShardedAccumulator) Drain() *Accumulator {
	out := NewAccumulator(s.Op)
	out.SetLimits(Limits{MaxGroups: -1, MaxRaws: -1})
	var drained int64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if sh.adds == 0 {
			sh.mu.Unlock()
			continue
		}
		old := sh.acc
		drained += sh.adds
		sh.acc = s.newShardAcc()
		sh.adds = 0
		sh.mu.Unlock()

		s.rawsDropped.Add(old.rawsDropped)
		s.groupsOverflowed.Add(old.groupsOverflowed)
		out.absorb(old)
	}
	if drained != 0 {
		s.pending.Add(-drained)
	}
	if len(out.order) > 1 {
		sort.SliceStable(out.order, func(i, j int) bool {
			return out.groups[out.order[i]].seq < out.groups[out.order[j]].seq
		})
	}
	return out
}

// RawsDropped returns how many raw rows FIFO eviction has discarded across
// all shards, cumulative across Drains.
func (s *ShardedAccumulator) RawsDropped() int64 {
	total := s.rawsDropped.Load()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		total += sh.acc.rawsDropped
		sh.mu.Unlock()
	}
	return total
}

// GroupsOverflowed returns how many rows were folded into overflow groups
// across all shards, cumulative across Drains.
func (s *ShardedAccumulator) GroupsOverflowed() int64 {
	total := s.groupsOverflowed.Load()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		total += sh.acc.groupsOverflowed
		sh.mu.Unlock()
	}
	return total
}
