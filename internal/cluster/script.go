package cluster

import (
	"fmt"
	"time"

	"repro/internal/baggage"
	"repro/internal/querygen"
	"repro/internal/tracepoint"
)

// scriptBranch is one live baggage branch during trace execution.
type scriptBranch struct {
	bag  *baggage.Baggage
	proc int
}

// ScriptExec realizes a querygen trace script on a simulated cluster:
// fires cross real tracepoints with real baggage contexts, splits and
// joins use the baggage branch operations, and transfers serialize the
// baggage across the (netsim) wire into the destination process. The
// differential harness, the tracing acceptance tests, and the cmd demo
// workloads all share this interpreter, so the substrate they measure
// cannot drift apart.
type ScriptExec struct {
	Procs []*Process
	TPs   [][]*tracepoint.Tracepoint // [proc][tp]
	// Err records the first script/substrate inconsistency (a fire whose
	// branch is in the wrong process); later ops are ignored.
	Err error

	c        *querygen.Case
	cl       *Cluster
	branches map[int]*scriptBranch
}

// NewScriptExec starts one cluster process per case process, defines the
// case's tracepoints in each, and returns an executor ready to Run the
// script.
func NewScriptExec(cl *Cluster, c *querygen.Case) *ScriptExec {
	x := &ScriptExec{c: c, cl: cl}
	x.Procs = make([]*Process, c.NumProcs)
	x.TPs = make([][]*tracepoint.Tracepoint, c.NumProcs)
	for p := range x.Procs {
		x.Procs[p] = cl.Start(c.Hosts[p], c.ProcNames[p])
		x.TPs[p] = make([]*tracepoint.Tracepoint, len(c.TPs))
		for ti, tp := range c.TPs {
			names := make([]string, len(tp.Fields))
			for i, f := range tp.Fields {
				names[i] = f.Name
			}
			x.TPs[p][ti] = x.Procs[p].Define(tp.Name, names...)
		}
	}
	return x
}

// Run interprets the script once as one fresh request (new empty baggage
// on the root branch). Calling Run again replays the script as another
// request; event stamps then reflect the latest run.
func (x *ScriptExec) Run() error {
	bag := baggage.New()
	// The originating process's agent mints the request-level sampling
	// decision into the root branch's baggage, exactly as NewRequest does
	// for library callers.
	if a := x.Procs[0].Agent; a != nil {
		a.MintSampleDecision(bag)
	}
	x.branches = map[int]*scriptBranch{0: {bag: bag, proc: 0}}
	x.c.Execute(x)
	return x.Err
}

// Fire fires event ev on branch in its generated process, stamping the
// event with the time and identity the substrate actually observed.
func (x *ScriptExec) Fire(branch int, ev *querygen.Event) {
	st := x.branches[branch]
	if st.proc != ev.Proc {
		if x.Err == nil {
			x.Err = fmt.Errorf("branch %d is in proc %d but event %d was generated for proc %d",
				branch, st.proc, ev.ID, ev.Proc)
		}
		return
	}
	p := x.Procs[ev.Proc]
	ctx := baggage.NewContext(p.Context(), st.bag)
	args := make([]any, len(ev.Args))
	for i, v := range ev.Args {
		args[i] = v
	}
	ev.Time = int64(x.cl.Env.Now())
	ev.Host = p.Info.Host
	ev.ProcName = p.Info.ProcName
	ev.ProcID = p.Info.ProcID
	ev.Stamped = true
	x.TPs[ev.Proc][ev.TP].Here(ctx, args...)
}

// Split forks branch, minting child with the same causal past.
func (x *ScriptExec) Split(branch, child int) {
	st := x.branches[branch]
	l, r := st.bag.Split()
	st.bag = l
	x.branches[child] = &scriptBranch{bag: r, proc: st.proc}
}

// Join merges branch src into dst; src is dead afterwards.
func (x *ScriptExec) Join(dst, src int) {
	d, s := x.branches[dst], x.branches[src]
	d.bag = baggage.Join(d.bag, s.bag)
	delete(x.branches, src)
}

// Transfer moves branch across a process boundary: serialize the baggage,
// ship it over the simulated network, deserialize in the destination.
func (x *ScriptExec) Transfer(branch, proc int) {
	st := x.branches[branch]
	payload := st.bag.Serialize()
	from, to := x.Procs[st.proc].Host, x.Procs[proc].Host
	if from != to {
		from.Send(to, float64(len(payload))+64)
	}
	st.bag = baggage.Deserialize(payload)
	st.proc = proc
}

// Delay advances virtual time.
func (x *ScriptExec) Delay(d time.Duration) { x.cl.Env.Sleep(d) }
