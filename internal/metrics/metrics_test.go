package metrics

import (
	"strings"
	"testing"
	"time"

	"repro/internal/advice"
	"repro/internal/agent"
	"repro/internal/agg"
	"repro/internal/tuple"
)

func sumOp() *advice.EmitOp {
	return &advice.EmitOp{
		Cols:    []advice.EmitCol{{Pos: 0}, {IsAgg: true, Pos: 1, Fn: agg.Sum}},
		GroupBy: []int{0},
		Schema:  tuple.Schema{"host", "SUM(v)"},
	}
}

// report fabricates an agent report with one group (key, sum).
func report(at time.Duration, host string, key string, v int64) agent.Report {
	acc := advice.NewAccumulator(sumOp())
	acc.Add(tuple.Tuple{tuple.String(key), tuple.Int(v)})
	return agent.Report{
		QueryID: "Q", Host: host, Time: at, Groups: acc.Groups(),
	}
}

func TestCollectorBinsAndMergesAcrossProcesses(t *testing.T) {
	c := NewCollector(sumOp(), time.Second)
	// Two processes reporting in the same bin must merge.
	c.OnReport(report(1100*time.Millisecond, "h1", "k", 10))
	c.OnReport(report(1900*time.Millisecond, "h2", "k", 5))
	// A later bin.
	c.OnReport(report(2500*time.Millisecond, "h1", "k", 7))
	series := c.Series([]int{0}, 1, false)
	pts := series["k"]
	if len(pts) != 2 {
		t.Fatalf("series = %v", pts)
	}
	if pts[0].V != 15 || pts[1].V != 7 {
		t.Fatalf("series = %v", pts)
	}
	if pts[0].T != time.Second || pts[1].T != 2*time.Second {
		t.Fatalf("bin times = %v", pts)
	}
}

func TestCollectorOutOfOrderReports(t *testing.T) {
	c := NewCollector(sumOp(), time.Second)
	// Reports arrive newest-first and interleaved; binning must not
	// depend on arrival order.
	c.OnReport(report(2500*time.Millisecond, "h1", "k", 7))
	c.OnReport(report(1100*time.Millisecond, "h1", "k", 10))
	c.OnReport(report(2900*time.Millisecond, "h2", "k", 3)) // duplicate bin, late
	c.OnReport(report(1900*time.Millisecond, "h2", "k", 5)) // duplicate bin, late
	series := c.Series([]int{0}, 1, false)
	pts := series["k"]
	if len(pts) != 2 {
		t.Fatalf("series = %v", pts)
	}
	if pts[0].T != time.Second || pts[0].V != 15 {
		t.Errorf("bin 1 = %v, want (1s, 15)", pts[0])
	}
	if pts[1].T != 2*time.Second || pts[1].V != 10 {
		t.Errorf("bin 2 = %v, want (2s, 10)", pts[1])
	}
}

func TestCollectorNegativeTimesGetOwnBins(t *testing.T) {
	c := NewCollector(sumOp(), time.Second)
	// A report stamped before the epoch (skewed clock) must not share
	// bin 0 with a positive-time report: -500ms floors to bin -1.
	c.OnReport(report(-500*time.Millisecond, "h1", "k", 1))
	c.OnReport(report(500*time.Millisecond, "h2", "k", 2))
	c.OnReport(report(-1500*time.Millisecond, "h1", "k", 4))
	c.OnReport(report(-time.Second, "h1", "k", 8)) // exact boundary: bin -1
	series := c.Series([]int{0}, 1, false)
	pts := series["k"]
	if len(pts) != 3 {
		t.Fatalf("series = %v", pts)
	}
	if pts[0].T != -2*time.Second || pts[0].V != 4 {
		t.Errorf("bin -2 = %v, want (-2s, 4)", pts[0])
	}
	if pts[1].T != -time.Second || pts[1].V != 9 {
		t.Errorf("bin -1 = %v, want (-1s, 9)", pts[1])
	}
	if pts[2].T != 0 || pts[2].V != 2 {
		t.Errorf("bin 0 = %v, want (0s, 2)", pts[2])
	}
}

func TestCollectorRateDividesByBin(t *testing.T) {
	c := NewCollector(sumOp(), 2*time.Second)
	c.OnReport(report(0, "h1", "k", 10))
	series := c.Series([]int{0}, 1, true)
	if got := series["k"][0].V; got != 5 {
		t.Fatalf("rate = %v, want 5/s", got)
	}
}

func TestCollectorTotals(t *testing.T) {
	c := NewCollector(sumOp(), time.Second)
	c.OnReport(report(500*time.Millisecond, "h1", "a", 1))
	c.OnReport(report(1500*time.Millisecond, "h1", "a", 2))
	c.OnReport(report(1500*time.Millisecond, "h1", "b", 9))
	totals := c.Totals([]int{0}, 1)
	if totals["a"] != 3 || totals["b"] != 9 {
		t.Fatalf("totals = %v", totals)
	}
}

func TestRenderTableAlignment(t *testing.T) {
	out := RenderTable([]string{"name", "value"}, [][]string{
		{"a", "1"},
		{"longer-name", "22"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %q", lines)
	}
	if len(lines[0]) != len(lines[1]) {
		t.Errorf("header and separator misaligned:\n%s", out)
	}
	if !strings.Contains(lines[2], "a") || !strings.Contains(lines[3], "longer-name") {
		t.Errorf("rows missing:\n%s", out)
	}
}

func TestTupleRows(t *testing.T) {
	rows := TupleRows([]tuple.Tuple{{tuple.String("x"), tuple.Int(3)}})
	if len(rows) != 1 || rows[0][0] != "x" || rows[0][1] != "3" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Error("empty sparkline")
	}
	s := Sparkline([]float64{0, 1, 2, 4})
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline = %q", s)
	}
	runes := []rune(s)
	if runes[0] >= runes[3] {
		t.Errorf("sparkline not increasing: %q", s)
	}
	// All-zero input must not divide by zero.
	if z := Sparkline([]float64{0, 0}); len([]rune(z)) != 2 {
		t.Errorf("zero sparkline = %q", z)
	}
}

func TestHeatmapLabels(t *testing.T) {
	out := Heatmap([]string{"host-A", "host-B"}, []string{"host-A", "host-B"},
		func(r, c int) float64 { return float64(r + c) })
	if !strings.Contains(out, "A") || !strings.Contains(out, "B") {
		t.Errorf("heatmap labels:\n%s", out)
	}
	if !strings.ContainsRune(out, '█') {
		t.Errorf("heatmap max shade missing:\n%s", out)
	}
}

func TestLatencyRecorderStats(t *testing.T) {
	lr := NewLatencyRecorder()
	if lr.Mean() != 0 || lr.Percentile(50) != 0 || lr.Count() != 0 {
		t.Error("empty recorder should be zeroes")
	}
	for i := 1; i <= 100; i++ {
		lr.Record(time.Duration(i)*100*time.Millisecond, time.Duration(i)*time.Millisecond)
	}
	if lr.Count() != 100 {
		t.Errorf("count = %d", lr.Count())
	}
	if m := lr.Mean(); m < 0.0500 || m > 0.0510 {
		t.Errorf("mean = %v, want ~50.5ms", m)
	}
	if p := lr.Percentile(50); p < 0.049 || p > 0.052 {
		t.Errorf("p50 = %v", p)
	}
	if p := lr.Percentile(99); p < 0.098 || p > 0.100 {
		t.Errorf("p99 = %v", p)
	}
}

func TestLatencyRecorderThroughput(t *testing.T) {
	lr := NewLatencyRecorder()
	// 3 ops in second 0, 1 op in second 2 (second 1 idle).
	lr.Record(100*time.Millisecond, time.Millisecond)
	lr.Record(500*time.Millisecond, time.Millisecond)
	lr.Record(900*time.Millisecond, time.Millisecond)
	lr.Record(2500*time.Millisecond, time.Millisecond)
	pts := lr.Throughput(time.Second)
	if len(pts) != 3 {
		t.Fatalf("bins = %v", pts)
	}
	if pts[0].V != 3 || pts[1].V != 0 || pts[2].V != 1 {
		t.Fatalf("throughput = %v", pts)
	}
}
